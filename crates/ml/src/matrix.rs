//! Small dense matrices and the solver used by ridge regression.

use std::fmt;

/// A small, dense, row-major matrix of `f64`.
///
/// The sizes in this workspace are tiny (at most a few hundred rows and a few dozen
/// columns), so the implementation optimises for clarity over speed.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same width"
        );
        Self {
            rows: rows.len(),
            cols,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// This is the allocation-friendly constructor the training paths use: the
    /// caller assembles every feature row back to back into one `Vec` (e.g.
    /// via the `*_into` feature builders) and hands the buffer over without a
    /// per-row allocation.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(
            data.len(),
            rows * cols,
            "flat buffer length must equal rows * cols"
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One row as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole row-major backing buffer (for in-crate hot loops that index
    /// rows by flat offset instead of materialising per-row slices).
    #[inline]
    pub(crate) fn data(&self) -> &[f64] {
        &self.data
    }

    /// The element at `(row, col)` without the tuple-index sugar (handy in
    /// tight loops where the optimiser benefits from the explicit form).
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must match");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must match columns");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Adds `value` to every diagonal element (in place); used for L2 regularisation.
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Solves `self * x = b` for a square system using Gaussian elimination with partial
    /// pivoting.  Returns `None` if the system is (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len()` does not match.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "right-hand side length must match");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivoting.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[r1 * n + col]
                        .abs()
                        .partial_cmp(&a[r2 * n + col].abs())
                        .expect("finite values")
                })
                .expect("non-empty range");
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in (col + 1)..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let m = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.solve(&b).unwrap(), b);
    }

    #[test]
    fn known_system_solves() {
        // 2x + y = 5 ; x + 3y = 10  -> x = 1, y = 3
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_system_returns_none() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn matmul_and_transpose_agree_with_hand_calc() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let at = a.transpose();
        let g = at.matmul(&a); // 2x2 Gram matrix
        assert!((g[(0, 0)] - 35.0).abs() < 1e-12);
        assert!((g[(0, 1)] - 44.0).abs() < 1e-12);
        assert!((g[(1, 1)] - 56.0).abs() < 1e-12);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0, 2.0], vec![0.5, 3.0, 1.0]]);
        let v = vec![2.0, 1.0, -1.0];
        let got = a.matvec(&v);
        assert!((got[0] - (-1.0)).abs() < 1e-12);
        assert!((got[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diagonal(2.5);
        assert_eq!(m[(1, 1)], 2.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    proptest! {
        /// Solving a well-conditioned random SPD system reproduces the original vector.
        #[test]
        fn solve_roundtrip(seed_vals in proptest::collection::vec(-3.0f64..3.0, 9),
                           x_true in proptest::collection::vec(-5.0f64..5.0, 3)) {
            let base = Matrix::from_rows(&[
                seed_vals[0..3].to_vec(),
                seed_vals[3..6].to_vec(),
                seed_vals[6..9].to_vec(),
            ]);
            // A^T A + I is symmetric positive definite, hence solvable.
            let mut spd = base.transpose().matmul(&base);
            spd.add_diagonal(1.0);
            let b = spd.matvec(&x_true);
            let x = spd.solve(&b).expect("SPD system is solvable");
            for (got, want) in x.iter().zip(&x_true) {
                prop_assert!((got - want).abs() < 1e-6);
            }
        }
    }
}
