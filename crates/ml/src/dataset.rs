//! Feature-matrix utilities: dataset assembly and standardisation.

use crate::error::FitError;
use crate::validate_training_set;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// A named feature matrix plus targets, built incrementally.
///
/// The power models assemble many small datasets (one per component / SRAM position /
/// sub-model); this helper keeps the feature names attached so that printed diagnostics
/// and ablations can refer to features by name.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset with the given feature names.
    pub fn new<I, S>(feature_names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            feature_names: feature_names.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the feature-name count.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "feature row width must match the declared names"
        );
        self.rows.push(features);
        self.targets.push(target);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Validates the dataset and returns `(rows, targets)` for fitting.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if the dataset is empty or malformed.
    pub fn as_training_set(&self) -> Result<(&[Vec<f64>], &[f64]), FitError> {
        validate_training_set(&self.rows, &self.targets)?;
        Ok((&self.rows, &self.targets))
    }
}

/// Per-feature standardisation (zero mean, unit variance) fitted on training data.
///
/// Ridge regression on raw hardware parameters would be dominated by the largest-valued
/// parameter; standardising first keeps the L2 penalty meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits the standardiser on training rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot standardise an empty set");
        let width = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == width), "ragged rows");
        let n = rows.len() as f64;
        let means: Vec<f64> = (0..width)
            .map(|j| rows.iter().map(|r| r[j]).sum::<f64>() / n)
            .collect();
        let stds: Vec<f64> = (0..width)
            .map(|j| {
                let var = rows
                    .iter()
                    .map(|r| (r[j] - means[j]) * (r[j] - means[j]))
                    .sum::<f64>()
                    / n;
                // Constant features keep a unit scale so they standardise to zero.
                if var.sqrt() < 1e-12 {
                    1.0
                } else {
                    var.sqrt()
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Transforms one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted width.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "row width mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transforms many rows.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Number of features this standardiser was fitted on.
    pub fn width(&self) -> usize {
        self.means.len()
    }
}

impl Codec for Standardizer {
    fn encode(&self, w: &mut Writer) {
        w.begin("standardizer");
        w.f64_seq("means", &self.means);
        w.f64_seq("stds", &self.stds);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("standardizer")?;
        let means = r.f64_seq("means")?;
        let stds = r.f64_seq("stds")?;
        r.end()?;
        if means.len() != stds.len() {
            return Err(CodecError::new(
                r.line(),
                format!(
                    "standardizer has {} means but {} stds",
                    means.len(),
                    stds.len()
                ),
            ));
        }
        Ok(Self { means, stds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_accumulates_and_validates() {
        let mut d = Dataset::new(["a", "b"]);
        assert!(d.is_empty());
        d.push(vec![1.0, 2.0], 3.0);
        d.push(vec![4.0, 5.0], 9.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.feature_names(), &["a".to_string(), "b".to_string()]);
        let (x, y) = d.as_training_set().unwrap();
        assert_eq!(x.len(), 2);
        assert_eq!(y, &[3.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn wrong_width_rejected() {
        let mut d = Dataset::new(["a", "b"]);
        d.push(vec![1.0], 3.0);
    }

    #[test]
    fn empty_dataset_is_a_fit_error() {
        let d = Dataset::new(["a"]);
        assert!(d.as_training_set().is_err());
    }

    #[test]
    fn standardizer_centres_and_scales() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = Standardizer::fit(&rows);
        let t = s.transform(&rows);
        // First column: mean 3, std sqrt(8/3).
        let col0: Vec<f64> = t.iter().map(|r| r[0]).collect();
        assert!((col0.iter().sum::<f64>()).abs() < 1e-12);
        // Constant column maps to exactly zero.
        assert!(t.iter().all(|r| r[1].abs() < 1e-12));
        assert_eq!(s.width(), 2);
    }

    #[test]
    fn transform_is_affine_and_invertible_in_spirit() {
        let rows = vec![vec![2.0], vec![4.0], vec![6.0], vec![8.0]];
        let s = Standardizer::fit(&rows);
        let a = s.transform_row(&[2.0])[0];
        let b = s.transform_row(&[8.0])[0];
        assert!(a < 0.0 && b > 0.0);
        assert!((a + b).abs() < 1e-12, "symmetric around the mean");
    }
}
