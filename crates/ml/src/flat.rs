//! Flat-forest inference: a fitted boosting ensemble compiled into one
//! contiguous node array.
//!
//! The boxed [`RegressionTree`](crate::RegressionTree) nodes are the natural
//! fit/serde representation, but traversing them pointer-chases one heap
//! allocation per node.  A [`FlatForest`] lays every node of every tree out
//! preorder in a single packed 16-byte-node array — split feature, threshold
//! (or inline leaf weight) and right-child index per node; the left child is
//! implicitly the next node — so a prediction walks index arithmetic over one
//! cache line per node.  (A four-array struct-of-arrays variant was measured
//! slower here: it touches one cache line *per array* per node.)  The
//! accumulation order is exactly the recursive ensemble's
//! (`base_score + Σ learning_rate · leaf`), so flat predictions are
//! **bit-identical** to the recursive ones — pinned by the parity proptests.

use crate::matrix::Matrix;
use crate::tree::{Node, RegressionTree};

/// Depth of a tree rooted at `node` (a bare leaf has depth 0).
fn node_depth(node: &Node) -> u32 {
    match node {
        Node::Leaf { .. } => 0,
        Node::Split { left, right, .. } => 1 + node_depth(left).max(node_depth(right)),
    }
}

/// Sentinel in [`FlatNode::feature`] marking a leaf node (the `threshold`
/// slot then holds the leaf weight).
const LEAF: u32 = u32::MAX;

/// One packed node: 16 bytes, preorder layout (left child at `index + 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlatNode {
    /// Split feature index; [`LEAF`] marks a leaf.
    feature: u32,
    /// Right-child node index (`x[feature] > threshold`); unused on leaves.
    right: u32,
    /// Split threshold, or the leaf weight on leaves (leaves inline).
    threshold: f64,
}

/// A boosted ensemble compiled for cache-friendly, allocation-free inference.
///
/// Compiled by [`GradientBoosting`](crate::GradientBoosting) at fit and decode
/// time; obtain one via
/// [`GradientBoosting::forest`](crate::GradientBoosting::forest).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatForest {
    base_score: f64,
    learning_rate: f64,
    /// Every node of every tree, preorder, trees back to back.
    nodes: Vec<FlatNode>,
    /// Root node index of each tree, in boosting order.
    roots: Vec<u32>,
    /// Depth of the deepest tree (0 = every tree is a bare leaf); bounds the
    /// fixed-step level-synchronous walk of [`FlatForest::predict_row`].
    max_depth: u32,
}

impl FlatForest {
    /// Compiles a fitted ensemble into flat storage.
    ///
    /// Unfitted trees are skipped (an ensemble mid-`fit` has none); an empty
    /// tree list yields a forest that predicts `base_score` everywhere.
    pub(crate) fn compile(base_score: f64, learning_rate: f64, trees: &[RegressionTree]) -> Self {
        let mut forest = Self {
            base_score,
            learning_rate,
            ..Self::default()
        };
        forest.max_depth = trees
            .iter()
            .filter_map(RegressionTree::root_node)
            .map(node_depth)
            .max()
            .unwrap_or(0);
        for tree in trees {
            if let Some(root) = tree.root_node() {
                let idx = forest.push_node(root, forest.max_depth);
                forest.roots.push(idx);
            }
        }
        forest
    }

    /// Flattens `node` with `levels` walk steps left to spend, padding early
    /// leaves so every root-to-leaf path consumes exactly
    /// `max_depth` steps.
    ///
    /// A leaf reached with steps to spare gets a chain of pass-through splits
    /// above it — `x[0] <= +∞` always descends left, and the stored right
    /// child aliases the left so even a NaN probe converges — which lets
    /// [`FlatForest::predict_row`] walk a fixed step count with no
    /// leaf-reached check (an unpredictable branch) in its hot loop.  The
    /// padded tree reaches the same leaf as the original for every input, so
    /// predictions are unchanged.
    fn push_node(&mut self, node: &Node, levels: u32) -> u32 {
        let idx = u32::try_from(self.nodes.len()).expect("forest exceeds u32 node indices");
        match node {
            Node::Leaf { .. } if levels > 0 => {
                self.nodes.push(FlatNode {
                    feature: 0,
                    right: idx + 1,
                    threshold: f64::INFINITY,
                });
                let below = self.push_node(node, levels - 1);
                debug_assert_eq!(below, idx + 1, "padded child is the next node");
            }
            Node::Leaf { weight } => {
                self.nodes.push(FlatNode {
                    feature: LEAF,
                    right: 0,
                    threshold: *weight,
                });
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                self.nodes.push(FlatNode {
                    feature: u32::try_from(*feature).expect("feature index fits u32"),
                    right: 0,
                    threshold: *threshold,
                });
                // Preorder: the left subtree directly follows its parent, so
                // only the right-child index needs storing.
                let left_idx = self.push_node(left, levels - 1);
                debug_assert_eq!(left_idx, idx + 1, "left child is the next node");
                let right_idx = self.push_node(right, levels - 1);
                self.nodes[idx as usize].right = right_idx;
            }
        }
        idx
    }

    /// Number of trees in the forest.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total number of nodes across all trees.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shrunk leaf sum of one tree for one row.
    #[inline]
    fn tree_leaf(&self, root: u32, x: &[f64]) -> f64 {
        let mut i = root as usize;
        loop {
            let node = self.nodes[i];
            if node.feature == LEAF {
                return node.threshold;
            }
            i = if x[node.feature as usize] <= node.threshold {
                i + 1
            } else {
                node.right as usize
            };
        }
    }

    /// Predicts one row: `base_score + Σ learning_rate · leaf`, trees in
    /// boosting order (bit-identical to the recursive ensemble).
    ///
    /// The walk is level-synchronous: a block of trees descends one level per
    /// pass, so the (data-dependent) node loads of independent trees overlap
    /// instead of serialising behind each other.  Compile-time padding makes
    /// every path exactly `max_depth` steps long, so the
    /// descend is a single conditional move per level with no
    /// leaf-reached check (an unpredictable branch) in the hot loop.  Leaf
    /// values are still accumulated in boosting order, so the result is
    /// bit-identical to the sequential walk.
    pub fn predict_row(&self, x: &[f64]) -> f64 {
        if x.is_empty() || self.max_depth == 0 {
            return self.predict_row_sequential(x);
        }
        // Monomorphised fixed-depth walks for the depths the models use: a
        // compile-time step count unrolls the descend loop completely.
        match self.max_depth {
            1 => self.predict_row_fixed::<1>(x),
            2 => self.predict_row_fixed::<2>(x),
            3 => self.predict_row_fixed::<3>(x),
            4 => self.predict_row_fixed::<4>(x),
            _ => self.predict_row_blocked(x),
        }
    }

    /// The plain one-tree-at-a-time walk (also the bare-leaf/empty-row path).
    fn predict_row_sequential(&self, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &root in &self.roots {
            acc += self.learning_rate * self.tree_leaf(root, x);
        }
        self.base_score + acc
    }

    /// Fixed-depth walk, four trees at a time in locals: `D` is the padded
    /// uniform depth, so the descend is `D` unrolled conditional-move steps
    /// per tree and the four chains keep their node loads in flight together.
    fn predict_row_fixed<const D: u32>(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(self.max_depth, D);
        let mut acc = 0.0;
        let mut quads = self.roots.chunks_exact(8);
        for quad in quads.by_ref() {
            let mut idx = [0usize; 8];
            for (slot, &root) in idx.iter_mut().zip(quad) {
                *slot = root as usize;
            }
            for _ in 0..D {
                for slot in &mut idx {
                    let node = self.nodes[*slot];
                    *slot = if x[node.feature as usize] <= node.threshold {
                        *slot + 1
                    } else {
                        node.right as usize
                    };
                }
            }
            // Leaf sums stay in boosting order: the strips partition the roots
            // sequentially, so the result is bit-identical to the plain walk.
            for &slot in &idx {
                acc += self.learning_rate * self.nodes[slot].threshold;
            }
        }
        for &root in quads.remainder() {
            acc += self.learning_rate * self.tree_leaf(root, x);
        }
        self.base_score + acc
    }

    /// Level-synchronous walk for unusually deep forests: a block of trees
    /// descends one level per pass so independent node loads overlap.
    fn predict_row_blocked(&self, x: &[f64]) -> f64 {
        const BLOCK: usize = 64;
        let mut idx = [0u32; BLOCK];
        let mut acc = 0.0;
        for roots in self.roots.chunks(BLOCK) {
            let n = roots.len();
            idx[..n].copy_from_slice(roots);
            for _ in 0..self.max_depth {
                for slot in idx[..n].iter_mut() {
                    let node = self.nodes[*slot as usize];
                    *slot = if x[node.feature as usize] <= node.threshold {
                        *slot + 1
                    } else {
                        node.right
                    };
                }
            }
            for &slot in &idx[..n] {
                acc += self.learning_rate * self.nodes[slot as usize].threshold;
            }
        }
        self.base_score + acc
    }

    /// Batched prediction: scores every row of `x` into `out` (cleared
    /// first).
    ///
    /// Rows are processed in blocks with all trees walked per block, keeping
    /// the node arrays hot in cache; each row's accumulation order is still
    /// tree-major, so every output is bit-identical to
    /// [`FlatForest::predict_row`].
    pub fn predict_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        const BLOCK: usize = 64;
        out.clear();
        out.resize(x.rows(), 0.0);
        let mut lo = 0;
        while lo < x.rows() {
            let hi = (lo + BLOCK).min(x.rows());
            for &root in &self.roots {
                for (i, slot) in out[lo..hi].iter_mut().enumerate() {
                    *slot += self.learning_rate * self.tree_leaf(root, x.row(lo + i));
                }
            }
            lo = hi;
        }
        for slot in out.iter_mut() {
            *slot += self.base_score;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::{GbdtParams, GradientBoosting};
    use crate::Regressor;
    use proptest::prelude::*;

    fn fitted(rows: usize, seed: u64, subsample: f64) -> (GradientBoosting, Vec<Vec<f64>>) {
        let x: Vec<Vec<f64>> = (0..rows)
            .map(|i| vec![i as f64, ((i * 7 + 3) % 11) as f64, (i % 4) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 0.5 + r[1] * r[2]).collect();
        let mut m = GradientBoosting::new(GbdtParams {
            n_estimators: 25,
            subsample,
            colsample: subsample,
            seed,
            ..GbdtParams::default()
        });
        m.fit(&x, &y).unwrap();
        (m, x)
    }

    #[test]
    fn flat_predictions_match_recursive_bit_for_bit() {
        for subsample in [1.0, 0.7] {
            let (m, x) = fitted(40, 9, subsample);
            for row in &x {
                assert_eq!(m.predict(row).to_bits(), m.predict_recursive(row).to_bits());
            }
        }
    }

    #[test]
    fn batched_predictions_match_row_by_row_bit_for_bit() {
        // 200 rows crosses the 64-row block boundary several times.
        let (m, x) = fitted(200, 3, 1.0);
        let matrix = Matrix::from_rows(&x);
        let mut out = Vec::new();
        m.forest().predict_into(&matrix, &mut out);
        assert_eq!(out.len(), x.len());
        for (row, got) in x.iter().zip(&out) {
            assert_eq!(got.to_bits(), m.forest().predict_row(row).to_bits());
        }
    }

    #[test]
    fn compiled_forest_mirrors_the_tree_list() {
        let (m, _) = fitted(30, 1, 1.0);
        assert_eq!(m.forest().tree_count(), m.tree_count());
        assert!(m.forest().node_count() >= m.tree_count());
    }

    proptest! {
        /// Flat inference is bit-identical to the recursive reference across
        /// randomly shaped, randomly subsampled fitted forests.
        #[test]
        fn flat_matches_recursive_on_random_forests(
            seed in 0u64..1000,
            n_estimators in 1usize..30,
            max_depth in 1usize..5,
            subsample in 0.4f64..1.0,
            raw in proptest::collection::vec(-50.0f64..50.0, 24..120),
        ) {
            let x: Vec<Vec<f64>> = raw.chunks_exact(3).map(<[f64]>::to_vec).collect();
            let y: Vec<f64> = x.iter().map(|r| r[0] - 2.0 * r[1] + r[2] * r[2] * 0.1).collect();
            let mut m = GradientBoosting::new(GbdtParams {
                n_estimators,
                max_depth,
                subsample,
                colsample: subsample,
                seed,
                ..GbdtParams::default()
            });
            m.fit(&x, &y).unwrap();
            let matrix = Matrix::from_rows(&x);
            let mut batched = Vec::new();
            m.forest().predict_into(&matrix, &mut batched);
            for (i, row) in x.iter().enumerate() {
                let flat = m.predict(row);
                let recursive = m.predict_recursive(row);
                prop_assert_eq!(flat.to_bits(), recursive.to_bits());
                prop_assert_eq!(batched[i].to_bits(), recursive.to_bits());
            }
        }
    }
}
