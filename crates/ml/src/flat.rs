//! Flat-forest inference: a fitted boosting ensemble compiled into one
//! contiguous node array.
//!
//! The boxed [`RegressionTree`](crate::RegressionTree) nodes are the natural
//! fit/serde representation, but traversing them pointer-chases one heap
//! allocation per node.  A [`FlatForest`] lays every node of every tree out
//! preorder in a single packed 16-byte-node array — split feature, threshold
//! (or inline leaf weight) and right-child index per node; the left child is
//! implicitly the next node — so a prediction walks index arithmetic over one
//! cache line per node.  (A four-array struct-of-arrays variant was measured
//! slower here: it touches one cache line *per array* per node.)  The
//! accumulation order is exactly the recursive ensemble's
//! (`base_score + Σ learning_rate · leaf`), so flat predictions are
//! **bit-identical** to the recursive ones — pinned by the parity proptests.

use crate::matrix::Matrix;
use crate::tree::{Node, RegressionTree};

/// Depth of a tree rooted at `node` (a bare leaf has depth 0).
fn node_depth(node: &Node) -> u32 {
    match node {
        Node::Leaf { .. } => 0,
        Node::Split { left, right, .. } => 1 + node_depth(left).max(node_depth(right)),
    }
}

/// Whether every leaf of the tree is exactly `±0.0`.
///
/// Such a tree contributes `learning_rate · ±0.0 = ±0.0` to every
/// prediction, and adding `±0.0` to the leaf-sum accumulator is a bitwise
/// no-op: the accumulator starts at `+0.0` and IEEE-754 round-to-nearest
/// addition can never produce `-0.0` from a `+0.0` starting point (exact
/// cancellation yields `+0.0`), so the accumulator is never `-0.0` and
/// `acc + ±0.0` returns `acc` bit for bit.  Boosting drives residuals to
/// exactly zero on the few-shot training sets this crate targets, so late
/// rounds routinely emit these all-zero trees — skipping their walks is pure
/// saved work, pinned bit-identical by the flat-vs-recursive parity tests.
fn all_leaves_zero(node: &Node) -> bool {
    match node {
        Node::Leaf { weight } => *weight == 0.0,
        Node::Split { left, right, .. } => all_leaves_zero(left) && all_leaves_zero(right),
    }
}

/// Sentinel in [`FlatNode::feature`] marking a leaf node (the `threshold`
/// slot then holds the leaf weight).
const LEAF: u32 = u32::MAX;

/// One packed node: 16 bytes, preorder layout (left child at `index + 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlatNode {
    /// Split feature index; [`LEAF`] marks a leaf.
    feature: u32,
    /// Right-child node index (`x[feature] > threshold`); unused on leaves.
    right: u32,
    /// Split threshold, or the leaf weight on leaves (leaves inline).
    threshold: f64,
}

/// A boosted ensemble compiled for cache-friendly, allocation-free inference.
///
/// Compiled by [`GradientBoosting`](crate::GradientBoosting) at fit and decode
/// time; obtain one via
/// [`GradientBoosting::forest`](crate::GradientBoosting::forest).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatForest {
    base_score: f64,
    learning_rate: f64,
    /// Every node of every tree, preorder, trees back to back.
    nodes: Vec<FlatNode>,
    /// Root node index of each tree, in boosting order.
    roots: Vec<u32>,
    /// Depth of the deepest tree (0 = every tree is a bare leaf); bounds the
    /// fixed-step level-synchronous walk of [`FlatForest::predict_row`].
    max_depth: u32,
}

impl FlatForest {
    /// Compiles a fitted ensemble into flat storage.
    ///
    /// Unfitted trees are skipped (an ensemble mid-`fit` has none); an empty
    /// tree list yields a forest that predicts `base_score` everywhere.
    pub(crate) fn compile(base_score: f64, learning_rate: f64, trees: &[RegressionTree]) -> Self {
        let mut forest = Self {
            base_score,
            learning_rate,
            ..Self::default()
        };
        forest.max_depth = trees
            .iter()
            .filter_map(RegressionTree::root_node)
            .filter(|root| !all_leaves_zero(root))
            .map(node_depth)
            .max()
            .unwrap_or(0);
        for tree in trees {
            if let Some(root) = tree.root_node() {
                // All-zero trees are bitwise no-ops (see `all_leaves_zero`):
                // dropping them here removes their walks from every predict
                // path without changing a single output bit.
                if all_leaves_zero(root) {
                    continue;
                }
                let idx = forest.push_node(root, forest.max_depth);
                forest.roots.push(idx);
            }
        }
        forest
    }

    /// Flattens `node` with `levels` walk steps left to spend, padding early
    /// leaves so every root-to-leaf path consumes exactly
    /// `max_depth` steps.
    ///
    /// A leaf reached with steps to spare gets a chain of pass-through splits
    /// above it — `x[0] <= +∞` always descends left, and the stored right
    /// child aliases the left so even a NaN probe converges — which lets
    /// [`FlatForest::predict_row`] walk a fixed step count with no
    /// leaf-reached check (an unpredictable branch) in its hot loop.  The
    /// padded tree reaches the same leaf as the original for every input, so
    /// predictions are unchanged.
    fn push_node(&mut self, node: &Node, levels: u32) -> u32 {
        let idx = u32::try_from(self.nodes.len()).expect("forest exceeds u32 node indices");
        match node {
            Node::Leaf { .. } if levels > 0 => {
                self.nodes.push(FlatNode {
                    feature: 0,
                    right: idx + 1,
                    threshold: f64::INFINITY,
                });
                let below = self.push_node(node, levels - 1);
                debug_assert_eq!(below, idx + 1, "padded child is the next node");
            }
            Node::Leaf { weight } => {
                self.nodes.push(FlatNode {
                    feature: LEAF,
                    right: 0,
                    threshold: *weight,
                });
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                self.nodes.push(FlatNode {
                    feature: u32::try_from(*feature).expect("feature index fits u32"),
                    right: 0,
                    threshold: *threshold,
                });
                // Preorder: the left subtree directly follows its parent, so
                // only the right-child index needs storing.
                let left_idx = self.push_node(left, levels - 1);
                debug_assert_eq!(left_idx, idx + 1, "left child is the next node");
                let right_idx = self.push_node(right, levels - 1);
                self.nodes[idx as usize].right = right_idx;
            }
        }
        idx
    }

    /// Number of trees the forest actually walks (all-zero no-op trees are
    /// dropped at compile time, so this can be less than the fitted
    /// ensemble's boosting-round count).
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total number of nodes across all trees.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shrunk leaf sum of one tree for one row.
    #[inline]
    fn tree_leaf(&self, root: u32, x: &[f64]) -> f64 {
        let mut i = root as usize;
        loop {
            let node = self.nodes[i];
            if node.feature == LEAF {
                return node.threshold;
            }
            i = if x[node.feature as usize] <= node.threshold {
                i + 1
            } else {
                node.right as usize
            };
        }
    }

    /// Predicts one row: `base_score + Σ learning_rate · leaf`, trees in
    /// boosting order (bit-identical to the recursive ensemble).
    ///
    /// The walk is level-synchronous: a block of trees descends one level per
    /// pass, so the (data-dependent) node loads of independent trees overlap
    /// instead of serialising behind each other.  Compile-time padding makes
    /// every path exactly `max_depth` steps long, so the
    /// descend is a single conditional move per level with no
    /// leaf-reached check (an unpredictable branch) in the hot loop.  Leaf
    /// values are still accumulated in boosting order, so the result is
    /// bit-identical to the sequential walk.
    pub fn predict_row(&self, x: &[f64]) -> f64 {
        if x.is_empty() || self.max_depth == 0 {
            return self.predict_row_sequential(x);
        }
        // Monomorphised fixed-depth walks for the depths the models use: a
        // compile-time step count unrolls the descend loop completely.
        match self.max_depth {
            1 => self.predict_row_fixed::<1>(x),
            2 => self.predict_row_fixed::<2>(x),
            3 => self.predict_row_fixed::<3>(x),
            4 => self.predict_row_fixed::<4>(x),
            _ => self.predict_row_blocked(x),
        }
    }

    /// The plain one-tree-at-a-time walk (also the bare-leaf/empty-row path).
    fn predict_row_sequential(&self, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &root in &self.roots {
            acc += self.learning_rate * self.tree_leaf(root, x);
        }
        self.base_score + acc
    }

    /// Fixed-depth walk, four trees at a time in locals: `D` is the padded
    /// uniform depth, so the descend is `D` unrolled conditional-move steps
    /// per tree and the four chains keep their node loads in flight together.
    fn predict_row_fixed<const D: u32>(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(self.max_depth, D);
        let mut acc = 0.0;
        let mut quads = self.roots.chunks_exact(8);
        for quad in quads.by_ref() {
            let mut idx = [0usize; 8];
            for (slot, &root) in idx.iter_mut().zip(quad) {
                *slot = root as usize;
            }
            for _ in 0..D {
                for slot in &mut idx {
                    let node = self.nodes[*slot];
                    *slot = if x[node.feature as usize] <= node.threshold {
                        *slot + 1
                    } else {
                        node.right as usize
                    };
                }
            }
            // Leaf sums stay in boosting order: the strips partition the roots
            // sequentially, so the result is bit-identical to the plain walk.
            for &slot in &idx {
                acc += self.learning_rate * self.nodes[slot].threshold;
            }
        }
        for &root in quads.remainder() {
            acc += self.learning_rate * self.tree_leaf(root, x);
        }
        self.base_score + acc
    }

    /// Level-synchronous walk for unusually deep forests: a block of trees
    /// descends one level per pass so independent node loads overlap.
    fn predict_row_blocked(&self, x: &[f64]) -> f64 {
        const BLOCK: usize = 64;
        let mut idx = [0u32; BLOCK];
        let mut acc = 0.0;
        for roots in self.roots.chunks(BLOCK) {
            let n = roots.len();
            idx[..n].copy_from_slice(roots);
            for _ in 0..self.max_depth {
                for slot in idx[..n].iter_mut() {
                    let node = self.nodes[*slot as usize];
                    *slot = if x[node.feature as usize] <= node.threshold {
                        *slot + 1
                    } else {
                        node.right
                    };
                }
            }
            for &slot in &idx[..n] {
                acc += self.learning_rate * self.nodes[slot as usize].threshold;
            }
        }
        self.base_score + acc
    }

    /// Batched prediction: scores every row of `x` into `out` (cleared
    /// first).
    ///
    /// Rows are processed eight at a time: all trees are walked for the group
    /// (one tree's nodes stay hot across the lanes) and each tree descends the
    /// eight rows together through the same fixed-depth conditional-move walk
    /// [`FlatForest::predict_row`] uses — the padded uniform depth removes
    /// the leaf-reached branch, and the eight independent descents keep
    /// their node loads in flight together.  Each row's accumulation order
    /// is still tree-major (boosting order), so every output is
    /// bit-identical to [`FlatForest::predict_row`].
    pub fn predict_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        out.clear();
        out.resize(x.rows(), 0.0);
        if x.rows() == 0 {
            return;
        }
        if x.cols() == 0 || self.max_depth == 0 {
            // Bare-leaf forests (and degenerate empty rows, which the padded
            // walk cannot probe): the sequential walk is exact and cheap.
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.predict_row_sequential(x.row(i));
            }
            return;
        }
        match self.max_depth {
            1 => self.predict_into_fixed::<1>(x, out),
            2 => self.predict_into_fixed::<2>(x, out),
            3 => self.predict_into_fixed::<3>(x, out),
            4 => self.predict_into_fixed::<4>(x, out),
            _ => self.predict_into_blocked(x, out),
        }
        for slot in out.iter_mut() {
            *slot += self.base_score;
        }
    }

    /// Fixed-depth batched walk with eight fully scalarised lanes.
    ///
    /// The walk state (one node index and one accumulator per row lane) is
    /// spelled out as named locals rather than arrays: with arrays the
    /// compiler keeps the lane state on the stack and every level pays a
    /// store-forwarding round trip, which serialises the supposedly
    /// independent descents.  Named locals stay in registers, so the eight
    /// dependent load chains (node → feature → compare → next node) actually
    /// overlap and the walk runs at memory-level-parallelism speed.
    #[allow(clippy::too_many_lines)]
    fn predict_into_fixed<const D: u32>(&self, x: &Matrix, out: &mut [f64]) {
        debug_assert_eq!(self.max_depth, D);
        const LANES: usize = 8;
        let data = x.data();
        let cols = x.cols();
        let rows = x.rows();
        let nodes = &self.nodes[..];
        let lr = self.learning_rate;
        let mut r = 0;
        while r + LANES <= rows {
            let b0 = r * cols;
            let (b1, b2, b3) = (b0 + cols, b0 + 2 * cols, b0 + 3 * cols);
            let (b4, b5, b6, b7) = (b0 + 4 * cols, b0 + 5 * cols, b0 + 6 * cols, b0 + 7 * cols);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let (mut a4, mut a5, mut a6, mut a7) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for &root in &self.roots {
                let root = root as usize;
                let (mut i0, mut i1, mut i2, mut i3) = (root, root, root, root);
                let (mut i4, mut i5, mut i6, mut i7) = (root, root, root, root);
                for _ in 0..D {
                    let n0 = nodes[i0];
                    let n1 = nodes[i1];
                    let n2 = nodes[i2];
                    let n3 = nodes[i3];
                    let n4 = nodes[i4];
                    let n5 = nodes[i5];
                    let n6 = nodes[i6];
                    let n7 = nodes[i7];
                    i0 = if data[b0 + n0.feature as usize] <= n0.threshold {
                        i0 + 1
                    } else {
                        n0.right as usize
                    };
                    i1 = if data[b1 + n1.feature as usize] <= n1.threshold {
                        i1 + 1
                    } else {
                        n1.right as usize
                    };
                    i2 = if data[b2 + n2.feature as usize] <= n2.threshold {
                        i2 + 1
                    } else {
                        n2.right as usize
                    };
                    i3 = if data[b3 + n3.feature as usize] <= n3.threshold {
                        i3 + 1
                    } else {
                        n3.right as usize
                    };
                    i4 = if data[b4 + n4.feature as usize] <= n4.threshold {
                        i4 + 1
                    } else {
                        n4.right as usize
                    };
                    i5 = if data[b5 + n5.feature as usize] <= n5.threshold {
                        i5 + 1
                    } else {
                        n5.right as usize
                    };
                    i6 = if data[b6 + n6.feature as usize] <= n6.threshold {
                        i6 + 1
                    } else {
                        n6.right as usize
                    };
                    i7 = if data[b7 + n7.feature as usize] <= n7.threshold {
                        i7 + 1
                    } else {
                        n7.right as usize
                    };
                }
                a0 += lr * nodes[i0].threshold;
                a1 += lr * nodes[i1].threshold;
                a2 += lr * nodes[i2].threshold;
                a3 += lr * nodes[i3].threshold;
                a4 += lr * nodes[i4].threshold;
                a5 += lr * nodes[i5].threshold;
                a6 += lr * nodes[i6].threshold;
                a7 += lr * nodes[i7].threshold;
            }
            out[r] = a0;
            out[r + 1] = a1;
            out[r + 2] = a2;
            out[r + 3] = a3;
            out[r + 4] = a4;
            out[r + 5] = a5;
            out[r + 6] = a6;
            out[r + 7] = a7;
            r += LANES;
        }
        while r < rows {
            let mut a = 0.0;
            for &root in &self.roots {
                a += self.learning_rate * self.tree_leaf(root, x.row(r));
            }
            out[r] = a;
            r += 1;
        }
    }

    /// Batched walk for unusually deep forests: the original
    /// one-row-at-a-time descent, still row-blocked and tree-major.
    fn predict_into_blocked(&self, x: &Matrix, out: &mut [f64]) {
        const BLOCK: usize = 64;
        let mut lo = 0;
        while lo < x.rows() {
            let hi = (lo + BLOCK).min(x.rows());
            for &root in &self.roots {
                for (i, slot) in out[lo..hi].iter_mut().enumerate() {
                    *slot += self.learning_rate * self.tree_leaf(root, x.row(lo + i));
                }
            }
            lo = hi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::{GbdtParams, GradientBoosting};
    use crate::Regressor;
    use proptest::prelude::*;

    fn fitted(rows: usize, seed: u64, subsample: f64) -> (GradientBoosting, Vec<Vec<f64>>) {
        let x: Vec<Vec<f64>> = (0..rows)
            .map(|i| vec![i as f64, ((i * 7 + 3) % 11) as f64, (i % 4) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 0.5 + r[1] * r[2]).collect();
        let mut m = GradientBoosting::new(GbdtParams {
            n_estimators: 25,
            subsample,
            colsample: subsample,
            seed,
            ..GbdtParams::default()
        });
        m.fit(&x, &y).unwrap();
        (m, x)
    }

    #[test]
    fn flat_predictions_match_recursive_bit_for_bit() {
        for subsample in [1.0, 0.7] {
            let (m, x) = fitted(40, 9, subsample);
            for row in &x {
                assert_eq!(m.predict(row).to_bits(), m.predict_recursive(row).to_bits());
            }
        }
    }

    #[test]
    fn batched_predictions_match_row_by_row_bit_for_bit() {
        // 200 rows crosses the 64-row block boundary several times.
        let (m, x) = fitted(200, 3, 1.0);
        let matrix = Matrix::from_rows(&x);
        let mut out = Vec::new();
        m.forest().predict_into(&matrix, &mut out);
        assert_eq!(out.len(), x.len());
        for (row, got) in x.iter().zip(&out) {
            assert_eq!(got.to_bits(), m.forest().predict_row(row).to_bits());
        }
    }

    #[test]
    fn compiled_forest_mirrors_the_tree_list() {
        let (m, _) = fitted(30, 1, 1.0);
        assert_eq!(m.forest().tree_count(), m.tree_count());
        assert!(m.forest().node_count() >= m.tree_count());
    }

    proptest! {
        /// Flat inference is bit-identical to the recursive reference across
        /// randomly shaped, randomly subsampled fitted forests.
        #[test]
        fn flat_matches_recursive_on_random_forests(
            seed in 0u64..1000,
            n_estimators in 1usize..30,
            max_depth in 1usize..5,
            subsample in 0.4f64..1.0,
            raw in proptest::collection::vec(-50.0f64..50.0, 24..120),
        ) {
            let x: Vec<Vec<f64>> = raw.chunks_exact(3).map(<[f64]>::to_vec).collect();
            let y: Vec<f64> = x.iter().map(|r| r[0] - 2.0 * r[1] + r[2] * r[2] * 0.1).collect();
            let mut m = GradientBoosting::new(GbdtParams {
                n_estimators,
                max_depth,
                subsample,
                colsample: subsample,
                seed,
                ..GbdtParams::default()
            });
            m.fit(&x, &y).unwrap();
            let matrix = Matrix::from_rows(&x);
            let mut batched = Vec::new();
            m.forest().predict_into(&matrix, &mut batched);
            for (i, row) in x.iter().enumerate() {
                let flat = m.predict(row);
                let recursive = m.predict_recursive(row);
                prop_assert_eq!(flat.to_bits(), recursive.to_bits());
                prop_assert_eq!(batched[i].to_bits(), recursive.to_bits());
            }
        }
    }
}
