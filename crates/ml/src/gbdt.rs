//! Gradient-boosted regression trees (a small, faithful XGBoost stand-in).

use crate::error::FitError;
use crate::flat::FlatForest;
use crate::matrix::Matrix;
use crate::tree::{RegressionTree, TreeParams};
use crate::{validate_matrix_training_set, validate_training_set, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// Hyper-parameters of the gradient-boosting model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub n_estimators: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// L2 regularisation on leaf weights.
    pub lambda: f64,
    /// Minimum gain to split.
    pub gamma: f64,
    /// Row subsampling fraction per round (1.0 disables subsampling).
    pub subsample: f64,
    /// Column subsampling fraction per round (1.0 disables subsampling).
    pub colsample: f64,
    /// Seed of the subsampling RNG.
    pub seed: u64,
}

impl Default for GbdtParams {
    /// Defaults tuned for the paper's regime: few samples (tens), few features (tens).
    fn default() -> Self {
        Self {
            n_estimators: 120,
            learning_rate: 0.08,
            max_depth: 3,
            min_child_weight: 1.0,
            lambda: 1.0,
            gamma: 0.0,
            subsample: 1.0,
            colsample: 1.0,
            seed: 7,
        }
    }
}

impl GbdtParams {
    /// Validates the hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is outside `(0, 1]` or a count is zero.
    pub fn validate(&self) {
        assert!(self.n_estimators > 0, "need at least one boosting round");
        assert!(
            self.learning_rate > 0.0 && self.learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        assert!(
            self.subsample > 0.0 && self.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        assert!(
            self.colsample > 0.0 && self.colsample <= 1.0,
            "colsample must be in (0, 1]"
        );
        assert!(
            self.lambda >= 0.0 && self.gamma >= 0.0,
            "regularisers must be non-negative"
        );
    }
}

/// Gradient-boosted trees with squared-error objective.
///
/// This is the stand-in for XGBoost, which the paper uses for the effective-active-rate,
/// SRAM-activity, register-activity and combinational-variation sub-models as well as
/// for the McPAT-Calib baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoosting {
    params: GbdtParams,
    base_score: f64,
    /// The fit/serde representation: one boxed-node tree per boosting round.
    trees: Vec<RegressionTree>,
    /// The inference representation, compiled from `trees` at fit and decode
    /// time (empty while unfitted).  Never serialized — `trees` is canonical.
    flat: FlatForest,
}

impl GradientBoosting {
    /// Creates an unfitted model.
    pub fn new(params: GbdtParams) -> Self {
        params.validate();
        Self {
            params,
            base_score: 0.0,
            trees: Vec::new(),
            flat: FlatForest::default(),
        }
    }

    /// The hyper-parameters.
    pub fn params(&self) -> &GbdtParams {
        &self.params
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Whether the model has been fitted.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty() || self.base_score != 0.0
    }

    /// The compiled flat forest serving this model's predictions.
    ///
    /// Use [`FlatForest::predict_into`] for batched scoring of a whole
    /// feature matrix.
    pub fn forest(&self) -> &FlatForest {
        &self.flat
    }

    /// Fits on a flat row-major feature matrix (the allocation-friendly twin
    /// of [`Regressor::fit`]).
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if the data is empty, non-finite, or the target
    /// length does not match.
    pub fn fit_matrix(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        let width = validate_matrix_training_set(x, y)?;
        let n = x.rows();
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        self.base_score = y.iter().sum::<f64>() / n as f64;
        self.trees.clear();
        self.flat = FlatForest::default();
        let mut predictions = vec![self.base_score; n];

        let tree_params = TreeParams {
            max_depth: self.params.max_depth,
            min_child_weight: self.params.min_child_weight,
            lambda: self.params.lambda,
            gamma: self.params.gamma,
        };

        let all_rows: Vec<usize> = (0..n).collect();
        let all_cols: Vec<usize> = (0..width).collect();
        let row_sample = ((n as f64 * self.params.subsample).ceil() as usize).clamp(1, n);
        let col_sample = ((width as f64 * self.params.colsample).ceil() as usize).clamp(1, width);

        // Hoisted per-round buffers: gradients are overwritten in place,
        // hessians are the constant 1 of squared loss, and the subsample
        // scratch vectors are reshuffled instead of recloned.
        let mut gradients = vec![0.0; n];
        let hessians = vec![1.0; n];
        let mut row_scratch = all_rows.clone();
        let mut col_scratch = all_cols.clone();
        let mut tree_scratch = crate::tree::FitScratch::new();

        // Without row subsampling every round trains on the same rows in the
        // same order, so the per-feature pre-sort can be hoisted out of the
        // boosting loop entirely: sort once, hand every tree a copy.  (Row
        // subsampling changes the row set *and* the stable-tie order, so those
        // runs keep the per-tree sort.)
        let master_sorted: Option<Vec<usize>> = (row_sample == n).then(|| {
            let mut master = vec![0usize; width * n];
            for feature in 0..width {
                let seg = &mut master[feature * n..(feature + 1) * n];
                seg.copy_from_slice(&all_rows);
                seg.sort_by(|&a, &b| {
                    x.at(a, feature)
                        .partial_cmp(&x.at(b, feature))
                        .expect("finite features")
                });
            }
            master
        });

        for _ in 0..self.params.n_estimators {
            // Squared loss: gradient = prediction - target, hessian = 1.
            for (g, (p, t)) in gradients.iter_mut().zip(predictions.iter().zip(y)) {
                *g = p - t;
            }

            let rows: &[usize] = if row_sample == n {
                &all_rows
            } else {
                row_scratch.copy_from_slice(&all_rows);
                row_scratch.shuffle(&mut rng);
                &row_scratch[..row_sample]
            };
            let cols: &[usize] = if col_sample == width {
                &all_cols
            } else {
                col_scratch.copy_from_slice(&all_cols);
                col_scratch.shuffle(&mut rng);
                &col_scratch[..col_sample]
            };

            let mut tree = RegressionTree::new(tree_params);
            tree.fit_gradients_scratch(
                x,
                &gradients,
                &hessians,
                rows,
                cols,
                master_sorted.as_deref(),
                &mut tree_scratch,
            )?;
            for (i, prediction) in predictions.iter_mut().enumerate() {
                *prediction += self.params.learning_rate * tree.predict(x.row(i));
            }
            self.trees.push(tree);
        }
        self.flat = FlatForest::compile(self.base_score, self.params.learning_rate, &self.trees);
        Ok(())
    }

    /// The recursive reference prediction over the boxed-node trees.
    ///
    /// [`Regressor::predict`] serves from the compiled [`FlatForest`]; this
    /// path is retained as the bit-parity oracle the flat traversal is tested
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful fit.
    pub fn predict_recursive(&self, x: &[f64]) -> f64 {
        assert!(
            self.is_fitted(),
            "predict called before fit on the boosting model"
        );
        self.base_score
            + self
                .trees
                .iter()
                .map(|t| self.params.learning_rate * t.predict(x))
                .sum::<f64>()
    }
}

impl Default for GradientBoosting {
    fn default() -> Self {
        Self::new(GbdtParams::default())
    }
}

impl Codec for GbdtParams {
    fn encode(&self, w: &mut Writer) {
        w.begin("gbdt-params");
        w.u64("n_estimators", self.n_estimators as u64);
        w.f64("learning_rate", self.learning_rate);
        w.u64("max_depth", self.max_depth as u64);
        w.f64("min_child_weight", self.min_child_weight);
        w.f64("lambda", self.lambda);
        w.f64("gamma", self.gamma);
        w.f64("subsample", self.subsample);
        w.f64("colsample", self.colsample);
        w.u64("seed", self.seed);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("gbdt-params")?;
        let params = Self {
            n_estimators: r.u64("n_estimators")? as usize,
            learning_rate: r.f64("learning_rate")?,
            max_depth: r.u64("max_depth")? as usize,
            min_child_weight: r.f64("min_child_weight")?,
            lambda: r.f64("lambda")?,
            gamma: r.f64("gamma")?,
            subsample: r.f64("subsample")?,
            colsample: r.f64("colsample")?,
            seed: r.u64("seed")?,
        };
        r.end()?;
        if params.n_estimators == 0
            || !(params.learning_rate > 0.0 && params.learning_rate <= 1.0)
            || !(params.subsample > 0.0 && params.subsample <= 1.0)
            || !(params.colsample > 0.0 && params.colsample <= 1.0)
            || !(params.lambda >= 0.0 && params.gamma >= 0.0)
        {
            return Err(CodecError::new(
                r.line(),
                "gbdt-params fail hyper-parameter validation",
            ));
        }
        Ok(params)
    }
}

impl Codec for GradientBoosting {
    fn encode(&self, w: &mut Writer) {
        w.begin("gbdt");
        self.params.encode(w);
        w.f64("base_score", self.base_score);
        w.begin_list("trees", self.trees.len());
        for tree in &self.trees {
            tree.encode(w);
        }
        w.end();
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("gbdt")?;
        let params = GbdtParams::decode(r)?;
        let base_score = r.f64("base_score")?;
        let len = r.begin_list("trees")?;
        let mut trees = Vec::with_capacity(len);
        for _ in 0..len {
            trees.push(crate::tree::RegressionTree::decode(r)?);
        }
        r.end()?;
        r.end()?;
        // Loaded models serve predictions from the same compiled flat path as
        // freshly trained ones: cold-starting from a file inherits the batched
        // inference layout for free.
        let flat = FlatForest::compile(base_score, params.learning_rate, &trees);
        Ok(Self {
            params,
            base_score,
            trees,
            flat,
        })
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        validate_training_set(x, y)?;
        self.fit_matrix(&Matrix::from_rows(x), y)
    }

    fn predict(&self, x: &[f64]) -> f64 {
        assert!(
            self.is_fitted(),
            "predict called before fit on the boosting model"
        );
        self.flat.predict_row(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn nonlinear_target(r: &[f64]) -> f64 {
        3.0 * r[0] + (r[1] * 0.5).sin() * 10.0 + if r[0] > 5.0 { 8.0 } else { 0.0 }
    }

    #[test]
    fn fits_a_nonlinear_function_well_in_sample() {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 12) as f64, (i / 12) as f64 * 2.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| nonlinear_target(r)).collect();
        let mut m = GradientBoosting::default();
        m.fit(&x, &y).unwrap();
        let pred = m.predict_batch(&x);
        let r2 = metrics::r_squared(&y, &pred);
        assert!(r2 > 0.97, "in-sample R2 {r2}");
    }

    #[test]
    fn generalises_on_held_out_grid_points() {
        let train: Vec<Vec<f64>> = (0..80)
            .filter(|i| i % 5 != 0)
            .map(|i| vec![(i % 16) as f64, (i / 16) as f64])
            .collect();
        let test: Vec<Vec<f64>> = (0..80)
            .filter(|i| i % 5 == 0)
            .map(|i| vec![(i % 16) as f64, (i / 16) as f64])
            .collect();
        let y_train: Vec<f64> = train.iter().map(|r| nonlinear_target(r)).collect();
        let y_test: Vec<f64> = test.iter().map(|r| nonlinear_target(r)).collect();
        let mut m = GradientBoosting::default();
        m.fit(&train, &y_train).unwrap();
        let pred = m.predict_batch(&test);
        assert!(metrics::r_squared(&y_test, &pred) > 0.8);
    }

    #[test]
    fn deterministic_given_the_same_seed() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, (i * 3 % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[1]).collect();
        let mut a = GradientBoosting::default();
        let mut b = GradientBoosting::default();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        for row in &x {
            assert_eq!(a.predict(row), b.predict(row));
        }
        // With subsampling enabled, different seeds generally give different predictions.
        let subsampled = |seed: u64| {
            let mut m = GradientBoosting::new(GbdtParams {
                subsample: 0.6,
                colsample: 0.6,
                seed,
                ..GbdtParams::default()
            });
            m.fit(&x, &y).unwrap();
            m
        };
        let c = subsampled(99);
        let d = subsampled(100);
        let differs = x
            .iter()
            .any(|row| (c.predict(row) - d.predict(row)).abs() > 1e-12);
        assert!(differs);
    }

    #[test]
    fn handles_tiny_few_shot_datasets() {
        // 16 samples (2 configurations x 8 workloads) is the paper's smallest regime.
        let x: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![(i % 2) as f64 * 4.0, i as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 1.0 + 0.2 * r[0] + 0.05 * r[1]).collect();
        let mut m = GradientBoosting::default();
        m.fit(&x, &y).unwrap();
        let pred = m.predict_batch(&x);
        assert!(metrics::mape(&y, &pred) < 0.05);
    }

    #[test]
    fn constant_target_predicts_the_constant() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![4.2; 10];
        let mut m = GradientBoosting::default();
        m.fit(&x, &y).unwrap();
        assert!((m.predict(&[100.0]) - 4.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn invalid_params_rejected() {
        let _ = GradientBoosting::new(GbdtParams {
            learning_rate: 0.0,
            ..GbdtParams::default()
        });
    }

    #[test]
    fn fit_error_propagates() {
        let mut m = GradientBoosting::default();
        assert!(m.fit(&[], &[]).is_err());
    }
}
