//! From-scratch machine-learning toolkit for the AutoPower reproduction.
//!
//! The paper uses two model families: linear regression with L2 regularisation (ridge)
//! for the register-count and gating-rate sub-models, and XGBoost for the activity-,
//! variation- and baseline models.  The Rust ML ecosystem is thin and the problems are
//! tiny (tens of samples, tens of features), so this crate implements both from scratch:
//!
//! * [`Matrix`] — small dense linear algebra with a symmetric-positive-definite solver,
//! * [`RidgeRegression`] — exact closed-form ridge regression with feature standardisation,
//! * [`RegressionTree`] — CART regression trees with second-order (XGBoost-style) leaf
//!   weights,
//! * [`GradientBoosting`] — gradient-boosted trees with shrinkage, subsampling and L2
//!   leaf regularisation (a faithful small-scale XGBoost stand-in),
//! * [`metrics`] — MAPE, R², Pearson correlation, RMSE: the figures of merit the paper
//!   reports,
//! * [`Regressor`] — the common trait the power models program against.
//!
//! Everything is deterministic: the only stochastic element (row/column subsampling in
//! boosting) uses an explicit seed.
//!
//! # Example
//!
//! ```
//! use autopower_ml::{GradientBoosting, Regressor, RidgeRegression};
//!
//! let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i * i) as f64]).collect();
//! let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 0.5).collect();
//!
//! let mut ridge = RidgeRegression::new(1e-3);
//! ridge.fit(&x, &y).unwrap();
//! assert!((ridge.predict(&[10.0, 100.0]) - 30.5).abs() < 0.2);
//!
//! let mut gbdt = GradientBoosting::default();
//! gbdt.fit(&x, &y).unwrap();
//! assert!(gbdt.predict(&[10.0, 100.0]) > 20.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod flat;
mod gbdt;
mod linear;
mod matrix;
pub mod metrics;
mod multi;
mod tree;

pub use dataset::{Dataset, Standardizer};
pub use error::FitError;
pub use flat::FlatForest;
pub use gbdt::{GbdtParams, GradientBoosting};
pub use linear::RidgeRegression;
pub use matrix::Matrix;
pub use multi::fit_multi_output;
pub use tree::{RegressionTree, TreeParams};

/// A regression model that can be fitted on a feature matrix and queried row by row.
///
/// The power models in `autopower` program against this trait so that the choice of
/// sub-model (ridge vs. boosted trees) stays a one-line decision, as in the paper.
pub trait Regressor {
    /// Fits the model to rows `x` (one inner `Vec` per sample) and targets `y`.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if the data is empty, ragged, or contains non-finite values.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError>;

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before a successful [`Regressor::fit`] or with
    /// a row of the wrong width.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predicts the targets of many rows.
    fn predict_batch(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|row| self.predict(row)).collect()
    }
}

/// Validates a training set: non-empty, rectangular, finite, and `x.len() == y.len()`.
pub(crate) fn validate_training_set(x: &[Vec<f64>], y: &[f64]) -> Result<usize, FitError> {
    if x.is_empty() || y.is_empty() {
        return Err(FitError::EmptyTrainingSet);
    }
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch {
            rows: x.len(),
            targets: y.len(),
        });
    }
    let width = x[0].len();
    if width == 0 {
        return Err(FitError::EmptyTrainingSet);
    }
    for row in x {
        if row.len() != width {
            return Err(FitError::RaggedRows);
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(FitError::NonFiniteValue);
        }
    }
    if y.iter().any(|v| !v.is_finite()) {
        return Err(FitError::NonFiniteValue);
    }
    Ok(width)
}

/// Validates a flat-matrix training set: `x.rows() == y.len()` and every
/// value finite.  Rectangularity and non-emptiness are structural [`Matrix`]
/// invariants, so only the data itself needs checking.
pub(crate) fn validate_matrix_training_set(x: &Matrix, y: &[f64]) -> Result<usize, FitError> {
    if x.rows() != y.len() {
        return Err(FitError::LengthMismatch {
            rows: x.rows(),
            targets: y.len(),
        });
    }
    for i in 0..x.rows() {
        if x.row(i).iter().any(|v| !v.is_finite()) {
            return Err(FitError::NonFiniteValue);
        }
    }
    if y.iter().any(|v| !v.is_finite()) {
        return Err(FitError::NonFiniteValue);
    }
    Ok(x.cols())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_inputs() {
        assert!(matches!(
            validate_training_set(&[], &[]),
            Err(FitError::EmptyTrainingSet)
        ));
        assert!(matches!(
            validate_training_set(&[vec![1.0]], &[1.0, 2.0]),
            Err(FitError::LengthMismatch { .. })
        ));
        assert!(matches!(
            validate_training_set(&[vec![1.0, 2.0], vec![1.0]], &[1.0, 2.0]),
            Err(FitError::RaggedRows)
        ));
        assert!(matches!(
            validate_training_set(&[vec![f64::NAN]], &[1.0]),
            Err(FitError::NonFiniteValue)
        ));
        assert_eq!(validate_training_set(&[vec![1.0, 2.0]], &[3.0]).unwrap(), 2);
    }
}
