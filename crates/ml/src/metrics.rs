//! Regression metrics: the figures of merit reported in the paper.
//!
//! The paper reports MAPE (mean absolute percentage error), the coefficient of
//! determination R², and for the per-group detail figures the Pearson correlation
//! coefficient R.

/// Mean absolute percentage error `mean(|pred - truth| / |truth|)`, as a fraction
/// (multiply by 100 for percent).
///
/// Samples whose true value is exactly zero are skipped, matching common practice.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mape(truth: &[f64], predictions: &[f64]) -> f64 {
    check(truth, predictions);
    let mut acc = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(predictions) {
        if *t != 0.0 {
            acc += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

/// Coefficient of determination `R² = 1 - SS_res / SS_tot`.
///
/// Returns 1.0 when the truth is constant and perfectly predicted, and can be negative
/// when predictions are worse than predicting the mean.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn r_squared(truth: &[f64], predictions: &[f64]) -> f64 {
    check(truth, predictions);
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = truth
        .iter()
        .zip(predictions)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    if ss_tot < 1e-30 {
        if ss_res < 1e-30 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Pearson correlation coefficient R between truth and predictions.
///
/// Returns 0.0 when either side is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn pearson(truth: &[f64], predictions: &[f64]) -> f64 {
    check(truth, predictions);
    let n = truth.len() as f64;
    let mt = truth.iter().sum::<f64>() / n;
    let mp = predictions.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vt = 0.0;
    let mut vp = 0.0;
    for (t, p) in truth.iter().zip(predictions) {
        cov += (t - mt) * (p - mp);
        vt += (t - mt) * (t - mt);
        vp += (p - mp) * (p - mp);
    }
    if vt < 1e-30 || vp < 1e-30 {
        0.0
    } else {
        cov / (vt.sqrt() * vp.sqrt())
    }
}

/// Root-mean-square error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(truth: &[f64], predictions: &[f64]) -> f64 {
    check(truth, predictions);
    let ss: f64 = truth
        .iter()
        .zip(predictions)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    (ss / truth.len() as f64).sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(truth: &[f64], predictions: &[f64]) -> f64 {
    check(truth, predictions);
    truth
        .iter()
        .zip(predictions)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

fn check(truth: &[f64], predictions: &[f64]) {
    assert!(!truth.is_empty(), "metrics require at least one sample");
    assert_eq!(
        truth.len(),
        predictions.len(),
        "truth and prediction lengths must match"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_predictions_score_perfectly() {
        let t = vec![1.0, 2.0, 4.0, 8.0];
        assert_eq!(mape(&t, &t), 0.0);
        assert!((r_squared(&t, &t) - 1.0).abs() < 1e-12);
        assert!((pearson(&t, &t) - 1.0).abs() < 1e-12);
        assert_eq!(rmse(&t, &t), 0.0);
        assert_eq!(mae(&t, &t), 0.0);
    }

    #[test]
    fn known_mape() {
        let t = vec![100.0, 200.0];
        let p = vec![110.0, 180.0];
        assert!((mape(&t, &p) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_truth() {
        let t = vec![0.0, 100.0];
        let p = vec![5.0, 150.0];
        assert!((mape(&t, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn r_squared_of_mean_prediction_is_zero() {
        let t = vec![1.0, 2.0, 3.0, 4.0];
        let p = vec![2.5; 4];
        assert!(r_squared(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn r_squared_can_be_negative() {
        let t = vec![1.0, 2.0, 3.0];
        let p = vec![10.0, -10.0, 20.0];
        assert!(r_squared(&t, &p) < 0.0);
    }

    #[test]
    fn pearson_detects_anticorrelation_and_constants() {
        let t = vec![1.0, 2.0, 3.0];
        let anti = vec![3.0, 2.0, 1.0];
        assert!((pearson(&t, &anti) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&t, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        /// A linear transform of the truth has |Pearson R| = 1 and scale-dependent RMSE.
        #[test]
        fn pearson_invariant_under_positive_affine(
            t in proptest::collection::vec(-100.0f64..100.0, 3..30),
            a in 0.1f64..5.0,
            b in -10.0f64..10.0
        ) {
            // Skip degenerate constant vectors.
            let spread = t.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - t.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assume!(spread > 1e-6);
            let p: Vec<f64> = t.iter().map(|v| a * v + b).collect();
            prop_assert!((pearson(&t, &p) - 1.0).abs() < 1e-9);
        }

        /// RMSE is always at least MAE.
        #[test]
        fn rmse_dominates_mae(
            t in proptest::collection::vec(-50.0f64..50.0, 2..40),
            noise in proptest::collection::vec(-5.0f64..5.0, 40)
        ) {
            let p: Vec<f64> = t.iter().zip(&noise).map(|(v, n)| v + n).collect();
            prop_assert!(rmse(&t, &p) + 1e-12 >= mae(&t, &p));
        }
    }
}
