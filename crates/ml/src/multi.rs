//! Multi-output gradient boosting: one model per target series, all fitted
//! over a single shared feature matrix.
//!
//! The surrogate layer predicts many event rates from one configuration
//! feature vector.  Rather than a single multi-output tree model, it fits one
//! independent [`GradientBoosting`] per target — the targets span orders of
//! magnitude and want independent tree structure — but assembles the feature
//! matrix exactly once and reuses it across every fit.

use crate::error::FitError;
use crate::gbdt::{GbdtParams, GradientBoosting};
use crate::matrix::Matrix;

/// Fits one [`GradientBoosting`] model per target series over the shared
/// feature matrix `x`.
///
/// `targets[k]` is the whole target column of output `k`; every column must
/// hold one value per row of `x`.  Each output trains with `params`, except
/// that the subsampling seed is offset by the output index so subsampled fits
/// (when `subsample < 1`) decorrelate across outputs while staying fully
/// deterministic.
///
/// # Errors
///
/// Returns [`FitError::EmptyTrainingSet`] when `targets` is empty, and
/// propagates the first per-output fit error otherwise.
pub fn fit_multi_output(
    params: &GbdtParams,
    x: &Matrix,
    targets: &[Vec<f64>],
) -> Result<Vec<GradientBoosting>, FitError> {
    if targets.is_empty() {
        return Err(FitError::EmptyTrainingSet);
    }
    let mut models = Vec::with_capacity(targets.len());
    for (k, y) in targets.iter().enumerate() {
        let mut model = GradientBoosting::new(GbdtParams {
            seed: params.seed.wrapping_add(k as u64),
            ..*params
        });
        model.fit_matrix(x, y)?;
        models.push(model);
    }
    Ok(models)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_matrix() -> (Matrix, Vec<Vec<f64>>) {
        let rows = 40;
        let mut data = Vec::with_capacity(rows * 2);
        let mut t0 = Vec::with_capacity(rows);
        let mut t1 = Vec::with_capacity(rows);
        for i in 0..rows {
            let a = i as f64;
            let b = ((i * 7) % rows) as f64;
            data.extend([a, b]);
            t0.push(2.0 * a + 1.0);
            t1.push(0.5 * b - 3.0);
        }
        (Matrix::from_flat(rows, 2, data), vec![t0, t1])
    }

    #[test]
    fn fits_one_model_per_target_over_one_matrix() {
        let (x, targets) = shared_matrix();
        let models = fit_multi_output(&GbdtParams::default(), &x, &targets).unwrap();
        assert_eq!(models.len(), 2);
        assert!((models[0].forest().predict_row(&[10.0, 0.0]) - 21.0).abs() < 2.0);
        assert!((models[1].forest().predict_row(&[0.0, 20.0]) - 7.0).abs() < 2.0);
    }

    #[test]
    fn empty_target_list_is_refused() {
        let (x, _) = shared_matrix();
        assert_eq!(
            fit_multi_output(&GbdtParams::default(), &x, &[]).unwrap_err(),
            FitError::EmptyTrainingSet
        );
    }

    #[test]
    fn mismatched_target_length_propagates() {
        let (x, _) = shared_matrix();
        let err = fit_multi_output(&GbdtParams::default(), &x, &[vec![1.0; 3]]).unwrap_err();
        assert!(matches!(err, FitError::LengthMismatch { .. }));
    }

    #[test]
    fn deterministic_under_subsampling_with_decorrelated_seeds() {
        let (x, targets) = shared_matrix();
        let params = GbdtParams {
            subsample: 0.8,
            ..GbdtParams::default()
        };
        let a = fit_multi_output(&params, &x, &targets).unwrap();
        let b = fit_multi_output(&params, &x, &targets).unwrap();
        for (ma, mb) in a.iter().zip(&b) {
            assert_eq!(
                ma.forest().predict_row(&[5.0, 5.0]),
                mb.forest().predict_row(&[5.0, 5.0])
            );
        }
        // Per-output seed offset: the two outputs do not share a seed.
        assert_ne!(a[0].params().seed, a[1].params().seed);
    }
}
