//! Ridge regression (linear model with L2 regularisation).

use crate::dataset::Standardizer;
use crate::error::FitError;
use crate::matrix::Matrix;
use crate::{validate_training_set, Regressor};
use serde::codec::{Codec, CodecError, Reader, Writer};

/// Linear regression with an L2 penalty on the coefficients, solved in closed form.
///
/// This is the model the paper uses for the register-count and gating-rate sub-models
/// ("we adopt the linear model with L2 normalization as our ML model"): the correlation
/// is simple and only a handful of samples are available, so a regularised linear model
/// is both sufficient and robust.
///
/// Features are standardised internally; the intercept is not penalised.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    /// L2 penalty strength.
    alpha: f64,
    standardizer: Option<Standardizer>,
    coefficients: Vec<f64>,
    intercept: f64,
}

impl RidgeRegression {
    /// Creates an unfitted ridge model with penalty `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or non-finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be non-negative"
        );
        Self {
            alpha,
            standardizer: None,
            coefficients: Vec::new(),
            intercept: 0.0,
        }
    }

    /// The L2 penalty strength.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The fitted coefficients in standardised feature space (empty before fitting).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Whether the model has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.standardizer.is_some()
    }
}

impl Default for RidgeRegression {
    /// A lightly-regularised model suitable for the few-shot setting (`alpha = 1e-2`).
    fn default() -> Self {
        Self::new(1e-2)
    }
}

impl Codec for RidgeRegression {
    fn encode(&self, w: &mut Writer) {
        w.begin("ridge");
        w.f64("alpha", self.alpha);
        w.f64("intercept", self.intercept);
        w.f64_seq("coefficients", &self.coefficients);
        w.bool("fitted", self.standardizer.is_some());
        if let Some(s) = &self.standardizer {
            s.encode(w);
        }
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("ridge")?;
        let alpha = r.f64("alpha")?;
        let intercept = r.f64("intercept")?;
        let coefficients = r.f64_seq("coefficients")?;
        let standardizer = if r.bool("fitted")? {
            Some(Standardizer::decode(r)?)
        } else {
            None
        };
        r.end()?;
        Ok(Self {
            alpha,
            standardizer,
            coefficients,
            intercept,
        })
    }
}

impl Regressor for RidgeRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        let width = validate_training_set(x, y)?;
        let standardizer = Standardizer::fit(x);
        let xs = standardizer.transform(x);
        let n = xs.len() as f64;

        // Centre the targets so the intercept absorbs the mean and is not penalised.
        let y_mean = y.iter().sum::<f64>() / n;
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Normal equations on standardised features: (X^T X + alpha I) w = X^T y.
        let xm = Matrix::from_rows(&xs);
        let xt = xm.transpose();
        let mut gram = xt.matmul(&xm);
        gram.add_diagonal(self.alpha.max(1e-9));
        let rhs = xt.matvec(&yc);
        let coefficients = gram.solve(&rhs).ok_or(FitError::SingularSystem)?;

        debug_assert_eq!(coefficients.len(), width);
        self.standardizer = Some(standardizer);
        self.coefficients = coefficients;
        self.intercept = y_mean;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let standardizer = self
            .standardizer
            .as_ref()
            .expect("predict called before fit");
        let xs = standardizer.transform_row(x);
        self.intercept
            + xs.iter()
                .zip(&self.coefficients)
                .map(|(v, c)| v * c)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn recovers_a_linear_relationship() {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, (30 - i) as f64, 7.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - 0.5 * r[1] + 3.0).collect();
        let mut m = RidgeRegression::new(1e-4);
        m.fit(&x, &y).unwrap();
        for (row, target) in x.iter().zip(&y) {
            assert!((m.predict(row) - target).abs() < 1e-3);
        }
    }

    #[test]
    fn two_sample_few_shot_fit_is_exact_on_proportional_data() {
        // The paper's few-shot regime: two known configurations. A proportional target
        // must be interpolated exactly and extrapolate in the right direction.
        let x = vec![vec![4.0, 1.0], vec![8.0, 5.0]];
        let y = vec![400.0, 1200.0];
        let mut m = RidgeRegression::new(1e-6);
        m.fit(&x, &y).unwrap();
        assert!((m.predict(&[4.0, 1.0]) - 400.0).abs() < 1.0);
        assert!((m.predict(&[8.0, 5.0]) - 1200.0).abs() < 1.0);
        let mid = m.predict(&[6.0, 3.0]);
        assert!(mid > 400.0 && mid < 1200.0);
    }

    #[test]
    fn stronger_regularisation_shrinks_coefficients() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 5.0 * r[0]).collect();
        let mut weak = RidgeRegression::new(1e-6);
        let mut strong = RidgeRegression::new(100.0);
        weak.fit(&x, &y).unwrap();
        strong.fit(&x, &y).unwrap();
        assert!(strong.coefficients()[0].abs() < weak.coefficients()[0].abs());
    }

    #[test]
    fn constant_features_do_not_break_the_solver() {
        let x = vec![vec![1.0, 3.0], vec![1.0, 5.0], vec![1.0, 9.0]];
        let y = vec![6.0, 10.0, 18.0];
        let mut m = RidgeRegression::default();
        m.fit(&x, &y).unwrap();
        assert!(m.is_fitted());
        assert!((m.predict(&[1.0, 7.0]) - 14.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "predict called before fit")]
    fn predict_before_fit_panics() {
        let m = RidgeRegression::default();
        let _ = m.predict(&[1.0]);
    }

    #[test]
    fn rejects_bad_training_data() {
        let mut m = RidgeRegression::default();
        assert!(m.fit(&[], &[]).is_err());
        assert!(m
            .fit(&[vec![1.0], vec![f64::INFINITY]], &[1.0, 2.0])
            .is_err());
    }

    proptest! {
        /// Predictions are finite for any finite query after fitting on a small random set.
        #[test]
        fn predictions_are_finite(
            xs in proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 3), 3..12),
            q in proptest::collection::vec(-100.0f64..100.0, 3)
        ) {
            let y: Vec<f64> = xs.iter().map(|r| r.iter().sum::<f64>()).collect();
            let mut m = RidgeRegression::default();
            m.fit(&xs, &y).unwrap();
            prop_assert!(m.predict(&q).is_finite());
        }
    }
}
