//! Error type of the ML toolkit.

use std::error::Error;
use std::fmt;

/// Reasons a model cannot be fitted to a training set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// The training set has no rows or no features.
    EmptyTrainingSet,
    /// Feature rows have inconsistent widths.
    RaggedRows,
    /// The number of feature rows and targets differ.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of targets.
        targets: usize,
    },
    /// A feature or target value is NaN or infinite.
    NonFiniteValue,
    /// The normal-equation system is singular and cannot be solved.
    SingularSystem,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyTrainingSet => write!(f, "training set is empty"),
            FitError::RaggedRows => write!(f, "feature rows have inconsistent widths"),
            FitError::LengthMismatch { rows, targets } => write!(
                f,
                "number of feature rows ({rows}) does not match number of targets ({targets})"
            ),
            FitError::NonFiniteValue => write!(f, "training data contains a non-finite value"),
            FitError::SingularSystem => write!(f, "normal equations are singular"),
        }
    }
}

impl Error for FitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            FitError::EmptyTrainingSet.to_string(),
            FitError::RaggedRows.to_string(),
            FitError::LengthMismatch {
                rows: 3,
                targets: 4,
            }
            .to_string(),
            FitError::NonFiniteValue.to_string(),
            FitError::SingularSystem.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(FitError::SingularSystem);
    }
}
