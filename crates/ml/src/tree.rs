//! CART regression trees with XGBoost-style second-order leaf weights.
//!
//! Training uses the classic pre-sorted layout: the row indices are sorted
//! once per feature per `fit_gradients` call, then *stably partitioned* down
//! the tree, so each node's split scan is a linear walk instead of a fresh
//! `O(n log n)` sort per node per feature.  Stability is what keeps the result
//! bit-identical to the historical per-node sort: a stable sort by feature
//! value (ties keeping caller row order) followed by stable partitions yields
//! exactly the per-node visiting order the old code produced, so every split
//! gain, threshold and leaf weight comes out with the same bits.

use crate::error::FitError;
use crate::matrix::Matrix;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// Hyper-parameters of a single regression tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth of the tree (a depth of 0 is a single leaf).
    pub max_depth: usize,
    /// Minimum sum of hessians (= sample count for squared loss) required in each child.
    pub min_child_weight: f64,
    /// L2 regularisation on leaf weights (the `lambda` of XGBoost).
    pub lambda: f64,
    /// Minimum loss reduction required to make a split (the `gamma` of XGBoost).
    pub gamma: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 3,
            min_child_weight: 1.0,
            lambda: 1.0,
            gamma: 0.0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A regression tree fitted on gradients/hessians (XGBoost-style).
///
/// For squared loss the gradient of sample `i` is `prediction_i - target_i` and the
/// hessian is 1, in which case the tree fits the residuals with mean-valued leaves
/// shrunk by `lambda`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    params: TreeParams,
    root: Option<Node>,
    n_features: usize,
}

/// Reusable buffers of the pre-sorted tree builder.
///
/// A boosting loop fits hundreds of trees back to back; handing the same
/// scratch to every [`RegressionTree::fit_gradients_scratch`] call means tree
/// construction allocates nothing after the first round.
#[derive(Debug, Default)]
pub(crate) struct FitScratch {
    /// The node's rows in caller order; segment `[lo, hi)` per node.
    rows: Vec<usize>,
    /// `features.len()` stacked row lists of length `rows.len()` each:
    /// `sorted[fi * n + k]` walks feature `features[fi]` ascending (ties keep
    /// caller order — the stability that pins bit-identical splits).
    sorted: Vec<usize>,
    /// Reused right-half buffer for the stable in-place partition.
    partition: Vec<usize>,
}

impl FitScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// The pre-sorted training state: row lists partitioned down the tree.
///
/// `rows` keeps the node's rows in caller order (the order gradient/hessian
/// sums accumulate in); `sorted` stacks one pre-sorted copy per candidate
/// feature.  Both are partitioned *in place* per split, so building a tree
/// allocates nothing beyond the (reusable) scratch buffers.
struct Builder<'a> {
    params: TreeParams,
    x: &'a Matrix,
    gradients: &'a [f64],
    hessians: &'a [f64],
    features: &'a [usize],
    /// See [`FitScratch::rows`].
    rows: &'a mut [usize],
    /// See [`FitScratch::sorted`].
    sorted: &'a mut [usize],
    /// See [`FitScratch::partition`].
    scratch: &'a mut Vec<usize>,
}

/// Stably partitions `seg` by `x[row][feature] <= threshold` (matching rows
/// first, caller order preserved on both sides) and returns the match count.
fn stable_partition(
    seg: &mut [usize],
    scratch: &mut Vec<usize>,
    x: &Matrix,
    feature: usize,
    threshold: f64,
) -> usize {
    scratch.clear();
    let mut nl = 0;
    for k in 0..seg.len() {
        let i = seg[k];
        if x.at(i, feature) <= threshold {
            seg[nl] = i;
            nl += 1;
        } else {
            scratch.push(i);
        }
    }
    seg[nl..].copy_from_slice(scratch);
    nl
}

impl Builder<'_> {
    fn leaf_weight(&self, grad_sum: f64, hess_sum: f64) -> f64 {
        -grad_sum / (hess_sum + self.params.lambda)
    }

    fn gain(&self, gl: f64, hl: f64, gr: f64, hr: f64) -> f64 {
        let lambda = self.params.lambda;
        let score = |g: f64, h: f64| g * g / (h + lambda);
        0.5 * (score(gl, hl) + score(gr, hr) - score(gl + gr, hl + hr)) - self.params.gamma
    }

    fn build(&mut self, lo: usize, hi: usize, depth: usize) -> Node {
        let mut grad_sum = 0.0;
        let mut hess_sum = 0.0;
        for &i in &self.rows[lo..hi] {
            grad_sum += self.gradients[i];
            hess_sum += self.hessians[i];
        }
        if depth >= self.params.max_depth || hi - lo < 2 {
            return Node::Leaf {
                weight: self.leaf_weight(grad_sum, hess_sum),
            };
        }

        let n = self.rows.len();
        let x = self.x;
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for (fi, &feature) in self.features.iter().enumerate() {
            // Walk this node's rows in ascending feature order — the
            // pre-sorted list, no per-node sort.
            let order = &self.sorted[fi * n + lo..fi * n + hi];
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                gl += self.gradients[i];
                hl += self.hessians[i];
                let gr = grad_sum - gl;
                let hr = hess_sum - hl;
                // Do not split between identical feature values.
                if x.at(order[w], feature) == x.at(order[w + 1], feature) {
                    continue;
                }
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gain = self.gain(gl, hl, gr, hr);
                if gain > best.map_or(0.0, |b| b.0) + 1e-12 {
                    let threshold = 0.5 * (x.at(order[w], feature) + x.at(order[w + 1], feature));
                    best = Some((gain, feature, threshold));
                }
            }
        }

        match best {
            None => Node::Leaf {
                weight: self.leaf_weight(grad_sum, hess_sum),
            },
            Some((_, feature, threshold)) => {
                let nl = self.partition(lo, hi, feature, threshold);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(lo, lo + nl, depth + 1)),
                    right: Box::new(self.build(lo + nl, hi, depth + 1)),
                }
            }
        }
    }

    /// Partitions every row list of segment `[lo, hi)` by the chosen split.
    fn partition(&mut self, lo: usize, hi: usize, feature: usize, threshold: f64) -> usize {
        let n = self.rows.len();
        let x = self.x;
        let nl = stable_partition(&mut self.rows[lo..hi], self.scratch, x, feature, threshold);
        for fi in 0..self.features.len() {
            let seg = &mut self.sorted[fi * n + lo..fi * n + hi];
            let nl_sorted = stable_partition(seg, self.scratch, x, feature, threshold);
            debug_assert_eq!(nl, nl_sorted, "partitions must agree across row lists");
        }
        nl
    }
}

impl RegressionTree {
    /// Creates an unfitted tree.
    pub fn new(params: TreeParams) -> Self {
        Self {
            params,
            root: None,
            n_features: 0,
        }
    }

    /// Fits the tree to gradients and hessians on the given rows.
    ///
    /// `rows` indexes into `x`; the caller controls subsampling by passing a subset.
    ///
    /// # Errors
    ///
    /// Returns an error if the data is malformed.
    pub fn fit_gradients(
        &mut self,
        x: &Matrix,
        gradients: &[f64],
        hessians: &[f64],
        rows: &[usize],
        features: &[usize],
    ) -> Result<(), FitError> {
        crate::validate_matrix_training_set(x, gradients)?;
        self.fit_gradients_unchecked(x, gradients, hessians, rows, features)
    }

    /// The validated fit path: skips the `O(rows × cols)` finiteness scan so a
    /// boosting loop can validate its inputs once and fit many trees.
    pub(crate) fn fit_gradients_unchecked(
        &mut self,
        x: &Matrix,
        gradients: &[f64],
        hessians: &[f64],
        rows: &[usize],
        features: &[usize],
    ) -> Result<(), FitError> {
        self.fit_gradients_scratch(
            x,
            gradients,
            hessians,
            rows,
            features,
            None,
            &mut FitScratch::new(),
        )
    }

    /// The fully hoisted fit path a boosting loop drives: reuses `scratch`
    /// across trees, and — when `presorted` is given — skips the per-tree sort
    /// entirely.
    ///
    /// `presorted` stacks one stably pre-sorted copy of `rows` per feature
    /// *index* (`presorted[f * rows.len()..]` for feature `f`, ties in `rows`
    /// order).  It is only valid when every tree of the loop trains on the
    /// same `rows` in the same order (no row subsampling).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fit_gradients_scratch(
        &mut self,
        x: &Matrix,
        gradients: &[f64],
        hessians: &[f64],
        rows: &[usize],
        features: &[usize],
        presorted: Option<&[usize]>,
        scratch: &mut FitScratch,
    ) -> Result<(), FitError> {
        if gradients.len() != hessians.len() {
            return Err(FitError::LengthMismatch {
                rows: gradients.len(),
                targets: hessians.len(),
            });
        }
        if rows.is_empty() || features.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        let n = rows.len();
        scratch.rows.clear();
        scratch.rows.extend_from_slice(rows);
        scratch.sorted.clear();
        scratch.sorted.resize(features.len() * n, 0);
        match presorted {
            // One copy per feature from the master order (sorted once by the
            // caller for the whole boosting run).
            Some(master) => {
                for (fi, &feature) in features.iter().enumerate() {
                    scratch.sorted[fi * n..(fi + 1) * n]
                        .copy_from_slice(&master[feature * n..(feature + 1) * n]);
                }
            }
            // Pre-sort once per feature (stable: ties keep caller row order);
            // the builder partitions these lists down the tree instead of
            // re-sorting per node.
            None => {
                for (fi, &feature) in features.iter().enumerate() {
                    let seg = &mut scratch.sorted[fi * n..(fi + 1) * n];
                    seg.copy_from_slice(rows);
                    seg.sort_by(|&a, &b| {
                        x.at(a, feature)
                            .partial_cmp(&x.at(b, feature))
                            .expect("finite features")
                    });
                }
            }
        }
        let mut builder = Builder {
            params: self.params,
            x,
            gradients,
            hessians,
            features,
            rows: &mut scratch.rows,
            sorted: &mut scratch.sorted,
            scratch: &mut scratch.partition,
        };
        self.n_features = x.cols();
        self.root = Some(builder.build(0, n, 0));
        Ok(())
    }

    /// Convenience wrapper: fits the tree directly on residual targets (gradient = -y,
    /// hessian = 1), i.e. a plain CART with shrunk leaves.
    ///
    /// # Errors
    ///
    /// Returns an error if the data is malformed.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        crate::validate_training_set(x, y)?;
        let matrix = Matrix::from_rows(x);
        let gradients: Vec<f64> = y.iter().map(|v| -v).collect();
        let hessians = vec![1.0; y.len()];
        let rows: Vec<usize> = (0..matrix.rows()).collect();
        let features: Vec<usize> = (0..matrix.cols()).collect();
        self.fit_gradients_unchecked(&matrix, &gradients, &hessians, &rows, &features)
    }

    /// Predicts the leaf weight for one row.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful fit.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = self.root.as_ref().expect("predict called before fit");
        loop {
            match node {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of leaves of the fitted tree (0 before fitting).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    /// The fitted root node, for the flat-forest compiler.
    pub(crate) fn root_node(&self) -> Option<&Node> {
        self.root.as_ref()
    }
}

impl Codec for Node {
    fn encode(&self, w: &mut Writer) {
        match self {
            Node::Leaf { weight } => {
                w.begin("leaf");
                w.f64("weight", *weight);
                w.end();
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                w.begin("split");
                w.u64("feature", *feature as u64);
                w.f64("threshold", *threshold);
                left.encode(w);
                right.encode(w);
                w.end();
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Node::decode_bounded(r, 0)
    }
}

/// Deepest split nesting a decoded tree may carry.  Fitted trees are
/// single-digit deep ([`TreeParams::max_depth`]); the bound only exists so a
/// corrupted or crafted file fails with a [`CodecError`] instead of
/// overflowing the stack through unbounded recursion.
const MAX_DECODE_DEPTH: usize = 64;

impl Node {
    fn decode_bounded(r: &mut Reader<'_>, depth: usize) -> Result<Self, CodecError> {
        if depth > MAX_DECODE_DEPTH {
            return Err(CodecError::new(
                r.line(),
                format!("tree nests deeper than {MAX_DECODE_DEPTH} splits"),
            ));
        }
        // Peek for the leaf shape first; trees are shallow (max_depth is
        // single-digit), so a two-way branch on the tag keeps this simple.
        if r.try_begin("leaf")? {
            let weight = r.f64("weight")?;
            r.end()?;
            return Ok(Node::Leaf { weight });
        }
        r.begin("split")?;
        let feature = r.u64("feature")? as usize;
        let threshold = r.f64("threshold")?;
        let left = Box::new(Node::decode_bounded(r, depth + 1)?);
        let right = Box::new(Node::decode_bounded(r, depth + 1)?);
        r.end()?;
        Ok(Node::Split {
            feature,
            threshold,
            left,
            right,
        })
    }
}

impl Codec for TreeParams {
    fn encode(&self, w: &mut Writer) {
        w.begin("tree-params");
        w.u64("max_depth", self.max_depth as u64);
        w.f64("min_child_weight", self.min_child_weight);
        w.f64("lambda", self.lambda);
        w.f64("gamma", self.gamma);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("tree-params")?;
        let params = Self {
            max_depth: r.u64("max_depth")? as usize,
            min_child_weight: r.f64("min_child_weight")?,
            lambda: r.f64("lambda")?,
            gamma: r.f64("gamma")?,
        };
        r.end()?;
        Ok(params)
    }
}

impl Codec for RegressionTree {
    fn encode(&self, w: &mut Writer) {
        w.begin("tree");
        self.params.encode(w);
        w.u64("n_features", self.n_features as u64);
        w.bool("fitted", self.root.is_some());
        if let Some(root) = &self.root {
            root.encode(w);
        }
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("tree")?;
        let params = TreeParams::decode(r)?;
        let n_features = r.u64("n_features")? as usize;
        let root = if r.bool("fitted")? {
            Some(Node::decode(r)?)
        } else {
            None
        };
        r.end()?;
        Ok(Self {
            params,
            root,
            n_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_tree_predicts_shrunk_mean() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![10.0, 20.0, 30.0];
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 0,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        assert_eq!(t.leaf_count(), 1);
        assert!((t.predict(&[5.0]) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn splits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 2,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        assert!((t.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[15.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 2,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        assert!(t.leaf_count() <= 4);
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0.0, 0.0, 0.0, 100.0];
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 4,
            min_child_weight: 2.0,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        // The outlier cannot be isolated into its own leaf (child weight 1 < 2).
        assert!(t.predict(&[3.0]) < 100.0);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 0 is noise-free signal, feature 1 is a constant.
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 42.0]).collect();
        let y: Vec<f64> = (0..30).map(|i| if i < 15 { -2.0 } else { 2.0 }).collect();
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 1,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        assert_eq!(t.leaf_count(), 2);
        assert!(t.predict(&[0.0, 42.0]) < 0.0);
        assert!(t.predict(&[29.0, 42.0]) > 0.0);
    }

    #[test]
    fn empty_row_selection_is_an_error() {
        let x = Matrix::from_rows(&[vec![1.0]]);
        let g = vec![1.0];
        let h = vec![1.0];
        let mut t = RegressionTree::new(TreeParams::default());
        assert!(t.fit_gradients(&x, &g, &h, &[], &[0]).is_err());
    }

    #[test]
    fn subset_rows_and_features_fit_only_the_selection() {
        // Rows 0..4 carry the signal on feature 1; rows 4..8 would flip it.
        let x = Matrix::from_rows(
            &(0..8)
                .map(|i| vec![99.0, i as f64])
                .collect::<Vec<Vec<f64>>>(),
        );
        let g: Vec<f64> = (0..8).map(|i| if i < 2 { 1.0 } else { -1.0 }).collect();
        let h = vec![1.0; 8];
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 2,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit_gradients(&x, &g, &h, &[0, 1, 2, 3], &[1]).unwrap();
        // Only rows 0..4 were seen: the split separates {0,1} from {2,3}.
        assert!(t.predict(&[99.0, 0.0]) < 0.0);
        assert!(t.predict(&[99.0, 3.0]) > 0.0);
    }
}
