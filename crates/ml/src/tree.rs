//! CART regression trees with XGBoost-style second-order leaf weights.

use crate::error::FitError;
use crate::validate_training_set;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// Hyper-parameters of a single regression tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth of the tree (a depth of 0 is a single leaf).
    pub max_depth: usize,
    /// Minimum sum of hessians (= sample count for squared loss) required in each child.
    pub min_child_weight: f64,
    /// L2 regularisation on leaf weights (the `lambda` of XGBoost).
    pub lambda: f64,
    /// Minimum loss reduction required to make a split (the `gamma` of XGBoost).
    pub gamma: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 3,
            min_child_weight: 1.0,
            lambda: 1.0,
            gamma: 0.0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A regression tree fitted on gradients/hessians (XGBoost-style).
///
/// For squared loss the gradient of sample `i` is `prediction_i - target_i` and the
/// hessian is 1, in which case the tree fits the residuals with mean-valued leaves
/// shrunk by `lambda`.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    params: TreeParams,
    root: Option<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Creates an unfitted tree.
    pub fn new(params: TreeParams) -> Self {
        Self {
            params,
            root: None,
            n_features: 0,
        }
    }

    /// Fits the tree to gradients and hessians on the given rows.
    ///
    /// `rows` indexes into `x`; the caller controls subsampling by passing a subset.
    ///
    /// # Errors
    ///
    /// Returns an error if the data is malformed.
    pub fn fit_gradients(
        &mut self,
        x: &[Vec<f64>],
        gradients: &[f64],
        hessians: &[f64],
        rows: &[usize],
        features: &[usize],
    ) -> Result<(), FitError> {
        let width = validate_training_set(x, gradients)?;
        if gradients.len() != hessians.len() {
            return Err(FitError::LengthMismatch {
                rows: gradients.len(),
                targets: hessians.len(),
            });
        }
        if rows.is_empty() || features.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        self.n_features = width;
        self.root = Some(self.build(x, gradients, hessians, rows, features, 0));
        Ok(())
    }

    /// Convenience wrapper: fits the tree directly on residual targets (gradient = -y,
    /// hessian = 1), i.e. a plain CART with shrunk leaves.
    ///
    /// # Errors
    ///
    /// Returns an error if the data is malformed.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        let gradients: Vec<f64> = y.iter().map(|v| -v).collect();
        let hessians = vec![1.0; y.len()];
        let rows: Vec<usize> = (0..x.len()).collect();
        let features: Vec<usize> = (0..x.first().map_or(0, |r| r.len())).collect();
        self.fit_gradients(x, &gradients, &hessians, &rows, &features)
    }

    fn leaf_weight(&self, grad_sum: f64, hess_sum: f64) -> f64 {
        -grad_sum / (hess_sum + self.params.lambda)
    }

    fn gain(&self, gl: f64, hl: f64, gr: f64, hr: f64) -> f64 {
        let lambda = self.params.lambda;
        let score = |g: f64, h: f64| g * g / (h + lambda);
        0.5 * (score(gl, hl) + score(gr, hr) - score(gl + gr, hl + hr)) - self.params.gamma
    }

    fn build(
        &self,
        x: &[Vec<f64>],
        gradients: &[f64],
        hessians: &[f64],
        rows: &[usize],
        features: &[usize],
        depth: usize,
    ) -> Node {
        let grad_sum: f64 = rows.iter().map(|&i| gradients[i]).sum();
        let hess_sum: f64 = rows.iter().map(|&i| hessians[i]).sum();
        if depth >= self.params.max_depth || rows.len() < 2 {
            return Node::Leaf {
                weight: self.leaf_weight(grad_sum, hess_sum),
            };
        }

        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for &feature in features {
            // Sort the rows of this node by the candidate feature.
            let mut order: Vec<usize> = rows.to_vec();
            order.sort_by(|&a, &b| {
                x[a][feature]
                    .partial_cmp(&x[b][feature])
                    .expect("finite features")
            });
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                gl += gradients[i];
                hl += hessians[i];
                let gr = grad_sum - gl;
                let hr = hess_sum - hl;
                // Do not split between identical feature values.
                if x[order[w]][feature] == x[order[w + 1]][feature] {
                    continue;
                }
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gain = self.gain(gl, hl, gr, hr);
                if gain > best.map_or(0.0, |b| b.0) + 1e-12 {
                    let threshold = 0.5 * (x[order[w]][feature] + x[order[w + 1]][feature]);
                    best = Some((gain, feature, threshold));
                }
            }
        }

        match best {
            None => Node::Leaf {
                weight: self.leaf_weight(grad_sum, hess_sum),
            },
            Some((_, feature, threshold)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&i| x[i][feature] <= threshold);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(
                        x,
                        gradients,
                        hessians,
                        &left_rows,
                        features,
                        depth + 1,
                    )),
                    right: Box::new(self.build(
                        x,
                        gradients,
                        hessians,
                        &right_rows,
                        features,
                        depth + 1,
                    )),
                }
            }
        }
    }

    /// Predicts the leaf weight for one row.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful fit.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = self.root.as_ref().expect("predict called before fit");
        loop {
            match node {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of leaves of the fitted tree (0 before fitting).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }
}

impl Codec for Node {
    fn encode(&self, w: &mut Writer) {
        match self {
            Node::Leaf { weight } => {
                w.begin("leaf");
                w.f64("weight", *weight);
                w.end();
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                w.begin("split");
                w.u64("feature", *feature as u64);
                w.f64("threshold", *threshold);
                left.encode(w);
                right.encode(w);
                w.end();
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Node::decode_bounded(r, 0)
    }
}

/// Deepest split nesting a decoded tree may carry.  Fitted trees are
/// single-digit deep ([`TreeParams::max_depth`]); the bound only exists so a
/// corrupted or crafted file fails with a [`CodecError`] instead of
/// overflowing the stack through unbounded recursion.
const MAX_DECODE_DEPTH: usize = 64;

impl Node {
    fn decode_bounded(r: &mut Reader<'_>, depth: usize) -> Result<Self, CodecError> {
        if depth > MAX_DECODE_DEPTH {
            return Err(CodecError::new(
                r.line(),
                format!("tree nests deeper than {MAX_DECODE_DEPTH} splits"),
            ));
        }
        // Peek for the leaf shape first; trees are shallow (max_depth is
        // single-digit), so a two-way branch on the tag keeps this simple.
        if r.try_begin("leaf")? {
            let weight = r.f64("weight")?;
            r.end()?;
            return Ok(Node::Leaf { weight });
        }
        r.begin("split")?;
        let feature = r.u64("feature")? as usize;
        let threshold = r.f64("threshold")?;
        let left = Box::new(Node::decode_bounded(r, depth + 1)?);
        let right = Box::new(Node::decode_bounded(r, depth + 1)?);
        r.end()?;
        Ok(Node::Split {
            feature,
            threshold,
            left,
            right,
        })
    }
}

impl Codec for TreeParams {
    fn encode(&self, w: &mut Writer) {
        w.begin("tree-params");
        w.u64("max_depth", self.max_depth as u64);
        w.f64("min_child_weight", self.min_child_weight);
        w.f64("lambda", self.lambda);
        w.f64("gamma", self.gamma);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("tree-params")?;
        let params = Self {
            max_depth: r.u64("max_depth")? as usize,
            min_child_weight: r.f64("min_child_weight")?,
            lambda: r.f64("lambda")?,
            gamma: r.f64("gamma")?,
        };
        r.end()?;
        Ok(params)
    }
}

impl Codec for RegressionTree {
    fn encode(&self, w: &mut Writer) {
        w.begin("tree");
        self.params.encode(w);
        w.u64("n_features", self.n_features as u64);
        w.bool("fitted", self.root.is_some());
        if let Some(root) = &self.root {
            root.encode(w);
        }
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("tree")?;
        let params = TreeParams::decode(r)?;
        let n_features = r.u64("n_features")? as usize;
        let root = if r.bool("fitted")? {
            Some(Node::decode(r)?)
        } else {
            None
        };
        r.end()?;
        Ok(Self {
            params,
            root,
            n_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_tree_predicts_shrunk_mean() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![10.0, 20.0, 30.0];
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 0,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        assert_eq!(t.leaf_count(), 1);
        assert!((t.predict(&[5.0]) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn splits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 2,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        assert!((t.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[15.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 2,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        assert!(t.leaf_count() <= 4);
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0.0, 0.0, 0.0, 100.0];
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 4,
            min_child_weight: 2.0,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        // The outlier cannot be isolated into its own leaf (child weight 1 < 2).
        assert!(t.predict(&[3.0]) < 100.0);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 0 is noise-free signal, feature 1 is a constant.
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 42.0]).collect();
        let y: Vec<f64> = (0..30).map(|i| if i < 15 { -2.0 } else { 2.0 }).collect();
        let mut t = RegressionTree::new(TreeParams {
            max_depth: 1,
            lambda: 0.0,
            ..TreeParams::default()
        });
        t.fit(&x, &y).unwrap();
        assert_eq!(t.leaf_count(), 2);
        assert!(t.predict(&[0.0, 42.0]) < 0.0);
        assert!(t.predict(&[29.0, 42.0]) > 0.0);
    }

    #[test]
    fn empty_row_selection_is_an_error() {
        let x = vec![vec![1.0]];
        let g = vec![1.0];
        let h = vec![1.0];
        let mut t = RegressionTree::new(TreeParams::default());
        assert!(t.fit_gradients(&x, &g, &h, &[], &[0]).is_err());
    }
}
