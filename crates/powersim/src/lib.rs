//! Golden power evaluation substrate ("PrimePower substitute").
//!
//! The paper's golden power labels come from gate-level power simulation of the
//! synthesized netlist with activity from RTL simulation.  This crate plays that role:
//! it combines
//!
//! * the structural netlist summary from `autopower-netlist`,
//! * the true micro-architectural activity from `autopower-perfsim`, and
//! * the cell and macro energy figures from `autopower-techlib`
//!
//! into per-component, per-power-group golden power reports ([`PowerReport`]) and
//! 50-cycle power traces ([`PowerTrace`]).
//!
//! The power structure follows the paper exactly:
//!
//! * clock power: Eqs. 1–4 (ungated pins + gated pins × activity + gating-cell latches),
//! * SRAM power: block → macro mapping (Fig. 3(b)) and Eq. 10 (read/write energies plus a
//!   small pin-toggling constant),
//! * logic power: register (non-clock) power plus combinational power.
//!
//! # Example
//!
//! ```
//! use autopower_config::{boom_configs, Workload};
//! use autopower_netlist::synthesize;
//! use autopower_perfsim::{simulate, SimConfig};
//! use autopower_powersim::evaluate_run;
//! use autopower_techlib::TechLibrary;
//!
//! let lib = TechLibrary::tsmc40_like();
//! let cfg = boom_configs()[0];
//! let netlist = synthesize(&cfg, &lib);
//! let sim = simulate(&cfg, Workload::Vvadd, &SimConfig::fast());
//! let report = evaluate_run(&netlist, &sim, &lib);
//! assert!(report.total.total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod groups;
mod report;
mod trace;

pub use groups::PowerGroups;
pub use report::{ComponentPower, PowerReport};
pub use trace::{PowerSample, PowerTrace};

use autopower_config::{Component, Workload};
use autopower_netlist::{ComponentNetlist, Netlist, SramBlock};
use autopower_perfsim::{ActivitySnapshot, SimResult};
use autopower_techlib::TechLibrary;

/// Small constant power per SRAM block instance accounting for address/data pin toggling
/// (the `C` of Eq. 10), in mW.
const SRAM_PIN_TOGGLE_MW: f64 = 0.012;

/// Golden clock power of one component (Eqs. 1–4), in mW.
fn clock_power(netlist: &ComponentNetlist, alpha: f64, library: &TechLibrary) -> f64 {
    let cells = library.cells();
    let r = netlist.registers as f64;
    let gated = netlist.gated_registers as f64;
    let ungated = r - gated;
    let ungated_pin = ungated * cells.register_clock_pin_mw;
    let gated_pin = alpha * gated * cells.register_clock_pin_mw;
    let gating_cell = netlist.gating_cells as f64 * cells.gating_cell_latch_mw;
    ungated_pin + gated_pin + gating_cell
}

/// Golden power of one SRAM block group (all banks of one position), in mW.
fn sram_block_power(
    block: &SramBlock,
    reads_per_cycle: f64,
    writes_per_cycle: f64,
    library: &TechLibrary,
) -> f64 {
    let mapping = library.sram().map_block(block.width, block.depth);
    let count = block.count as f64;
    // Position-level rates are spread evenly over the banks.
    let f_read_block = reads_per_cycle / count;
    let f_write_block = writes_per_cycle / count;
    // A block access activates one horizontal row of macros (`rows` macros); each macro
    // therefore sees the block frequency divided by the depth-stacking factor N_col.
    let rows = mapping.rows as f64;
    let read_mw = f_read_block * rows * mapping.macro_spec.read_energy_pj;
    let write_mw = f_write_block * rows * mapping.macro_spec.write_energy_pj;
    let leakage_mw = library.sram().mapping_leakage_mw(&mapping);
    count * (read_mw + write_mw + leakage_mw + SRAM_PIN_TOGGLE_MW)
}

/// Golden per-group power of one component for one activity snapshot.
fn component_power(
    netlist: &ComponentNetlist,
    activity: &ActivitySnapshot,
    library: &TechLibrary,
) -> PowerGroups {
    let cells = library.cells();
    let act = activity.component(netlist.component);

    let clock = clock_power(netlist, act.clock_active_rate, library);

    let sram = netlist
        .sram_blocks
        .iter()
        .map(|block| {
            let pos_act = activity
                .position(block.position)
                .expect("netlist positions always exist in the activity snapshot");
            sram_block_power(
                block,
                pos_act.reads_per_cycle,
                pos_act.writes_per_cycle,
                library,
            )
        })
        .sum();

    let r = netlist.registers as f64;
    let register =
        r * act.reg_toggle_rate * cells.register_toggle_pj + r * cells.register_leakage_mw;

    let combinational = netlist.comb_gates
        * (act.comb_activity * cells.comb_dynamic_mw_per_gate + cells.comb_leakage_mw_per_gate);

    PowerGroups {
        clock,
        sram,
        register,
        combinational,
    }
}

/// Evaluates golden power for one netlist and one activity snapshot.
///
/// This is the core primitive; [`evaluate_run`] and [`evaluate_trace`] wrap it for the
/// whole-run and per-interval cases.
pub fn evaluate(
    netlist: &Netlist,
    activity: &ActivitySnapshot,
    workload: Workload,
    library: &TechLibrary,
) -> PowerReport {
    let components: Vec<ComponentPower> = Component::ALL
        .iter()
        .map(|&c| ComponentPower {
            component: c,
            groups: component_power(netlist.component(c), activity, library),
        })
        .collect();
    PowerReport::new(netlist.config.id, workload, components)
}

/// Evaluates the whole-run average golden power of one simulation.
pub fn evaluate_run(netlist: &Netlist, sim: &SimResult, library: &TechLibrary) -> PowerReport {
    evaluate(netlist, &sim.activity, sim.workload, library)
}

/// Evaluates the golden time-based power trace of one simulation (one sample per
/// interval, 50 cycles by default — the granularity of Table IV).
pub fn evaluate_trace(netlist: &Netlist, sim: &SimResult, library: &TechLibrary) -> PowerTrace {
    let samples = sim
        .intervals
        .iter()
        .map(|interval| {
            let report = evaluate(netlist, &interval.activity, sim.workload, library);
            PowerSample {
                start_cycle: interval.start_cycle,
                cycles: interval.counters.cycles,
                power: report.total,
            }
        })
        .collect();
    PowerTrace {
        config: netlist.config.id,
        workload: sim.workload,
        interval_cycles: sim.sim_config.interval_cycles,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::boom_configs;
    use autopower_netlist::synthesize;
    use autopower_perfsim::{simulate, SimConfig};

    fn setup(cfg_idx: usize, workload: Workload) -> (Netlist, SimResult, TechLibrary) {
        let lib = TechLibrary::tsmc40_like();
        let cfg = boom_configs()[cfg_idx];
        let netlist = synthesize(&cfg, &lib);
        let sim = simulate(&cfg, workload, &SimConfig::fast());
        (netlist, sim, lib)
    }

    #[test]
    fn power_is_positive_and_deterministic() {
        let (n, s, lib) = setup(7, Workload::Dhrystone);
        let a = evaluate_run(&n, &s, &lib);
        let b = evaluate_run(&n, &s, &lib);
        assert_eq!(a.total, b.total);
        assert!(a.total.clock > 0.0);
        assert!(a.total.sram > 0.0);
        assert!(a.total.register > 0.0);
        assert!(a.total.combinational > 0.0);
    }

    #[test]
    fn observation_1_clock_and_sram_dominate() {
        // The paper's Observation 1: clock + SRAM dominate total power. Check on a
        // mid-size configuration over several workloads.
        for w in [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd] {
            let (n, s, lib) = setup(7, w);
            let report = evaluate_run(&n, &s, &lib);
            let frac = (report.total.clock + report.total.sram) / report.total.total();
            assert!(frac > 0.5, "{w}: clock+sram fraction {frac}");
        }
    }

    #[test]
    fn larger_configs_burn_more_power() {
        let (n1, s1, lib) = setup(0, Workload::Median);
        let (n15, s15, _) = setup(14, Workload::Median);
        let p1 = evaluate_run(&n1, &s1, &lib).total.total();
        let p15 = evaluate_run(&n15, &s15, &lib).total.total();
        assert!(p15 > 1.5 * p1, "C15 {p15} vs C1 {p1}");
    }

    #[test]
    fn busier_workloads_burn_more_dynamic_power() {
        let lib = TechLibrary::tsmc40_like();
        let cfg = boom_configs()[7];
        let netlist = synthesize(&cfg, &lib);
        let busy = simulate(&cfg, Workload::Vvadd, &SimConfig::fast());
        // An artificial "idle" activity: reuse the busy snapshot but zero every rate.
        let mut idle_activity = busy.activity.clone();
        for c in &mut idle_activity.components {
            c.clock_active_rate = 0.02;
            c.reg_toggle_rate = 0.02;
            c.comb_activity = 0.02;
        }
        for p in &mut idle_activity.positions {
            p.reads_per_cycle = 0.0;
            p.writes_per_cycle = 0.0;
        }
        let p_busy = evaluate(&netlist, &busy.activity, Workload::Vvadd, &lib)
            .total
            .total();
        let p_idle = evaluate(&netlist, &idle_activity, Workload::Vvadd, &lib)
            .total
            .total();
        assert!(p_busy > p_idle);
        // Even idle, the ungated clock pins and leakage keep power well above zero.
        assert!(p_idle > 0.1 * p_busy);
    }

    #[test]
    fn trace_samples_cover_the_whole_run() {
        let (n, s, lib) = setup(5, Workload::Gemm);
        let trace = evaluate_trace(&n, &s, &lib);
        assert_eq!(trace.samples.len(), s.intervals.len());
        let trace_cycles: u64 = trace.samples.iter().map(|p| p.cycles).sum();
        assert_eq!(trace_cycles, s.cycles());
        assert!(trace.max_power() >= trace.min_power());
        assert!(trace.min_power() > 0.0);
        // The average of the trace is close to the whole-run average power (they use the
        // same activity model, so only interval-boundary effects differ).
        let avg_trace = trace.average_power();
        let avg_run = evaluate_run(&n, &s, &lib).total.total();
        assert!((avg_trace - avg_run).abs() / avg_run < 0.15);
    }

    #[test]
    fn component_powers_sum_to_total() {
        let (n, s, lib) = setup(10, Workload::Spmv);
        let report = evaluate_run(&n, &s, &lib);
        let sum: f64 = report.components.iter().map(|c| c.groups.total()).sum();
        assert!((sum - report.total.total()).abs() < 1e-9);
    }
}
