//! Time-based golden power traces (the ground truth of Table IV).

use crate::groups::PowerGroups;
use autopower_config::{ConfigId, Workload};
use serde::Serialize;

/// One sample of a power trace: the average power of one interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PowerSample {
    /// Cycle at which the interval starts.
    pub start_cycle: u64,
    /// Length of the interval in cycles.
    pub cycles: u64,
    /// Average per-group power of the interval, in mW.
    pub power: PowerGroups,
}

/// A golden time-based power trace for one `(configuration, workload)` pair.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PowerTrace {
    /// The evaluated configuration.
    pub config: ConfigId,
    /// The executed workload.
    pub workload: Workload,
    /// Nominal interval length in cycles (the paper uses 50).
    pub interval_cycles: u32,
    /// Samples in execution order.
    pub samples: Vec<PowerSample>,
}

impl PowerTrace {
    /// Total power values of all samples, in mW.
    pub fn totals(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.power.total()).collect()
    }

    /// Maximum sample power in mW (0 for an empty trace).
    pub fn max_power(&self) -> f64 {
        self.totals().into_iter().fold(0.0, f64::max)
    }

    /// Minimum sample power in mW.
    ///
    /// An empty trace has no minimum; by convention it reports 0.0, matching
    /// [`PowerTrace::max_power`] and [`PowerTrace::average_power`], so that
    /// empty traces never leak the fold's `f64::INFINITY` identity to callers.
    pub fn min_power(&self) -> f64 {
        let min = self.totals().into_iter().fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Cycle-weighted average power in mW (0 for an empty trace).
    pub fn average_power(&self) -> f64 {
        let cycles: u64 = self.samples.iter().map(|s| s.cycles).sum();
        if cycles == 0 {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.power.total() * s.cycles as f64)
            .sum::<f64>()
            / cycles as f64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with(totals: &[f64]) -> PowerTrace {
        PowerTrace {
            config: ConfigId::new(2),
            workload: Workload::Gemm,
            interval_cycles: 50,
            samples: totals
                .iter()
                .enumerate()
                .map(|(i, &t)| PowerSample {
                    start_cycle: i as u64 * 50,
                    cycles: 50,
                    power: PowerGroups {
                        clock: t / 2.0,
                        sram: t / 4.0,
                        register: t / 8.0,
                        combinational: t / 8.0,
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn extrema_and_average() {
        let t = trace_with(&[10.0, 30.0, 20.0]);
        assert!((t.max_power() - 30.0).abs() < 1e-12);
        assert!((t.min_power() - 10.0).abs() < 1e-12);
        assert!((t.average_power() - 20.0).abs() < 1e-12);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = trace_with(&[]);
        assert_eq!(t.max_power(), 0.0);
        assert_eq!(t.min_power(), 0.0);
        assert_eq!(t.average_power(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn average_is_cycle_weighted() {
        let mut t = trace_with(&[10.0, 40.0]);
        t.samples[1].cycles = 150; // second interval three times longer
        let expected = (10.0 * 50.0 + 40.0 * 150.0) / 200.0;
        assert!((t.average_power() - expected).abs() < 1e-12);
    }
}
