//! The four power groups of the paper's decomposition.

use serde::Serialize;
use std::ops::{Add, AddAssign};

/// Power split into the paper's groups, in mW.
///
/// The paper decouples power into clock, SRAM and logic, and further splits logic into
/// register (non-clock-pin) power and combinational power; this struct keeps the finer
/// four-way split and exposes [`PowerGroups::logic`] for the coarser view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct PowerGroups {
    /// Clock power: register clock pins + clock-gating cells, in mW.
    pub clock: f64,
    /// SRAM macro power (read/write energy, leakage, pin toggling), in mW.
    pub sram: f64,
    /// Register power excluding clock pins, in mW.
    pub register: f64,
    /// Combinational logic power, in mW.
    pub combinational: f64,
}

impl PowerGroups {
    /// Total power over all groups, in mW.
    pub fn total(&self) -> f64 {
        self.clock + self.sram + self.register + self.combinational
    }

    /// Logic power (register + combinational), in mW — the paper's third group.
    pub fn logic(&self) -> f64 {
        self.register + self.combinational
    }

    /// Fraction of the total contributed by the clock group.
    pub fn clock_fraction(&self) -> f64 {
        self.fraction(self.clock)
    }

    /// Fraction of the total contributed by the SRAM group.
    pub fn sram_fraction(&self) -> f64 {
        self.fraction(self.sram)
    }

    /// Fraction of the total contributed by the logic group.
    pub fn logic_fraction(&self) -> f64 {
        self.fraction(self.logic())
    }

    fn fraction(&self, part: f64) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            part / t
        }
    }

    /// Element-wise scaling (useful for averaging).
    pub fn scaled(&self, factor: f64) -> PowerGroups {
        PowerGroups {
            clock: self.clock * factor,
            sram: self.sram * factor,
            register: self.register * factor,
            combinational: self.combinational * factor,
        }
    }

    /// `true` if every group is finite and non-negative.
    pub fn is_physical(&self) -> bool {
        [self.clock, self.sram, self.register, self.combinational]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Add for PowerGroups {
    type Output = PowerGroups;

    fn add(self, rhs: PowerGroups) -> PowerGroups {
        PowerGroups {
            clock: self.clock + rhs.clock,
            sram: self.sram + rhs.sram,
            register: self.register + rhs.register,
            combinational: self.combinational + rhs.combinational,
        }
    }
}

impl AddAssign for PowerGroups {
    fn add_assign(&mut self, rhs: PowerGroups) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PowerGroups {
        PowerGroups {
            clock: 20.0,
            sram: 15.0,
            register: 5.0,
            combinational: 10.0,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let p = sample();
        assert!((p.total() - 50.0).abs() < 1e-12);
        assert!((p.logic() - 15.0).abs() < 1e-12);
        assert!((p.clock_fraction() - 0.4).abs() < 1e-12);
        assert!((p.sram_fraction() - 0.3).abs() < 1e-12);
        assert!((p.logic_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn add_and_scale() {
        let p = sample() + sample();
        assert!((p.total() - 100.0).abs() < 1e-12);
        let h = p.scaled(0.5);
        assert!((h.total() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn zero_total_has_zero_fractions() {
        let p = PowerGroups::default();
        assert_eq!(p.clock_fraction(), 0.0);
        assert!(p.is_physical());
    }

    #[test]
    fn negative_power_is_unphysical() {
        let mut p = sample();
        p.sram = -1.0;
        assert!(!p.is_physical());
    }
}
