//! Whole-run golden power reports.

use crate::groups::PowerGroups;
use autopower_config::{Component, ConfigId, Workload};
use serde::Serialize;

/// Golden power of one component, split into groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ComponentPower {
    /// The component.
    pub component: Component,
    /// Its per-group power, in mW.
    pub groups: PowerGroups,
}

/// Golden power report of one `(configuration, workload)` pair.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PowerReport {
    /// The evaluated configuration.
    pub config: ConfigId,
    /// The executed workload.
    pub workload: Workload,
    /// Per-component power, in [`Component::ALL`] order.
    pub components: Vec<ComponentPower>,
    /// Core-level totals (sum over components).
    pub total: PowerGroups,
}

impl PowerReport {
    /// Builds a report from per-component powers, computing the totals.
    ///
    /// # Panics
    ///
    /// Panics if `components` is not the full 22-component list in canonical order.
    pub fn new(config: ConfigId, workload: Workload, components: Vec<ComponentPower>) -> Self {
        assert_eq!(
            components.len(),
            Component::ALL.len(),
            "need all components"
        );
        for (i, c) in components.iter().enumerate() {
            assert_eq!(
                c.component.index(),
                i,
                "components must be in canonical order"
            );
        }
        let mut total = PowerGroups::default();
        for c in &components {
            total += c.groups;
        }
        Self {
            config,
            workload,
            components,
            total,
        }
    }

    /// Power of one component.
    pub fn component(&self, component: Component) -> PowerGroups {
        self.components[component.index()].groups
    }

    /// Total core power in mW.
    pub fn total_mw(&self) -> f64 {
        self.total.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_components(mw: f64) -> Vec<ComponentPower> {
        Component::ALL
            .iter()
            .map(|&component| ComponentPower {
                component,
                groups: PowerGroups {
                    clock: mw,
                    sram: mw / 2.0,
                    register: mw / 4.0,
                    combinational: mw / 4.0,
                },
            })
            .collect()
    }

    #[test]
    fn totals_sum_over_components() {
        let r = PowerReport::new(ConfigId::new(3), Workload::Qsort, uniform_components(1.0));
        assert!((r.total.clock - 22.0).abs() < 1e-9);
        assert!((r.total_mw() - 44.0).abs() < 1e-9);
        assert!((r.component(Component::Rob).total() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need all components")]
    fn missing_components_rejected() {
        let mut comps = uniform_components(1.0);
        comps.pop();
        let _ = PowerReport::new(ConfigId::new(1), Workload::Vvadd, comps);
    }

    #[test]
    #[should_panic(expected = "canonical order")]
    fn shuffled_components_rejected() {
        let mut comps = uniform_components(1.0);
        comps.swap(0, 1);
        let _ = PowerReport::new(ConfigId::new(1), Workload::Vvadd, comps);
    }
}
