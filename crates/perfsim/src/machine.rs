//! The allocation-free core of the pipeline model.
//!
//! [`Machine`] holds every mutable structure of one simulation — caches, TLBs,
//! predictor, fetch buffer, ROB and free-queues — with all capacities resolved
//! once from the configuration. It is the engine behind [`crate::Pipeline`]
//! and [`crate::simulate_with`]: [`Machine::reset`] restores the
//! construction state while recycling every allocation, so a sweep worker
//! simulates thousands of `(configuration, workload)` pairs without touching
//! the allocator.
//!
//! Instructions enter as [`RInstr`] — a 12-byte projection of
//! [`autopower_workloads::Instruction`] that halves the traffic through the
//! fetch buffer and replay streams. The projection is lossless for every
//! stream the generator produces (asserted in [`compact`]), so the machine is
//! bit-identical to the historical `VecDeque`-based pipeline; the test module
//! pins that against a reference transcription.

use crate::branch::BranchPredictor;
use crate::cache::{AccessOutcome, Cache};
use crate::events::EventCounters;
use crate::ring::Ring;
use crate::tlb::Tlb;
use autopower_config::{CpuConfig, HwParam};
use autopower_workloads::{InstrKind, Instruction};

/// Latency of an instruction-cache miss (cycles).
const ICACHE_MISS_LATENCY: u32 = 10;
/// Latency of a data-cache miss (cycles).
const DCACHE_MISS_LATENCY: u32 = 32;
/// Latency of a TLB miss (page-table walk, cycles).
const TLB_MISS_LATENCY: u32 = 14;
/// Front-end refill penalty after a branch misprediction (cycles).
const MISPREDICT_PENALTY: u32 = 9;

/// Compact replay instruction: 12 bytes against 40 for `Instruction`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RInstr {
    /// Program counter (fits 32 bits: code working sets sit near `0x1000_0000`).
    pub pc: u32,
    /// Data address for loads/stores, 0 otherwise (the full-width model also
    /// reads `unwrap_or(0)`).
    pub addr: u32,
    /// Instruction class.
    pub kind: InstrKind,
    /// Dependency distance (the generator emits `1 ..= 2 * ilp + 1`).
    pub dep: u8,
    /// Branch site id (< 64 static sites), 0 for non-branches.
    pub site: u8,
    /// Bit 0: branch taken; bits 1..: workload phase index.
    pub flags: u8,
}

impl RInstr {
    /// Inert filler value for pre-sized ring buffers (never observed).
    pub(crate) const DUMMY: RInstr = RInstr {
        pc: 0,
        addr: 0,
        kind: InstrKind::IntAlu,
        dep: 1,
        site: 0,
        flags: 0,
    };
}

/// Projects a full instruction onto the compact replay form.
///
/// # Panics
///
/// Panics if a field exceeds the compact ranges. The built-in workload
/// profiles stay far inside them (addresses below 4 GiB, dependency distances
/// ≤ 33, 64 branch sites, single-digit phase counts); the assertions turn a
/// hypothetical future violation into a loud failure instead of a silent
/// behaviour change.
pub(crate) fn compact(i: &Instruction) -> RInstr {
    assert!(i.pc <= u32::MAX as u64, "pc exceeds compact range");
    let addr = i.addr.unwrap_or(0);
    assert!(addr <= u32::MAX as u64, "address exceeds compact range");
    assert!(
        i.dep_distance <= u8::MAX as u32,
        "dep distance exceeds compact range"
    );
    let site = i.branch_site.unwrap_or(0);
    assert!(site <= u8::MAX as u16, "branch site exceeds compact range");
    assert!(i.phase < 128, "phase index exceeds compact range");
    RInstr {
        pc: i.pc as u32,
        addr: addr as u32,
        kind: i.kind,
        dep: i.dep_distance as u8,
        site: site as u8,
        flags: u8::from(i.taken) | (i.phase << 1),
    }
}

/// One in-flight instruction in the reorder buffer.
#[derive(Debug, Clone, Copy, Default)]
struct RobSlot {
    complete_cycle: u64,
    store_addr: u32,
    is_store: bool,
}

/// All mutable state of one pipeline simulation, reusable across runs.
#[derive(Debug)]
pub(crate) struct Machine {
    icache: Cache,
    dcache: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    predictor: BranchPredictor,
    fetch_buffer: Ring<RInstr>,
    rob: Ring<RobSlot>,
    lsq_occupancy: u32,
    lsq_free_queue: Ring<u64>,
    outstanding_misses: Ring<u64>,
    frontend_stall: u32,
    cycle: u64,
    counters: EventCounters,
    interval_phase: u8,
    // Hardware widths resolved once per reset instead of per stage call.
    fetch_width: usize,
    fb_capacity: usize,
    decode_width: usize,
    rob_capacity: usize,
    lsq_capacity: u32,
    int_width: usize,
    mem_width: usize,
    fp_width: usize,
    mshr_entries: usize,
}

impl Machine {
    /// Creates a machine sized for `config`.
    pub fn new(config: &CpuConfig) -> Self {
        let mut machine = Self {
            icache: Cache::new(1, 1, 64),
            dcache: Cache::new(1, 1, 64),
            itlb: Tlb::new(1),
            dtlb: Tlb::new(1),
            predictor: BranchPredictor::new(1),
            fetch_buffer: Ring::with_capacity(1, RInstr::DUMMY),
            rob: Ring::with_capacity(1, RobSlot::default()),
            lsq_occupancy: 0,
            lsq_free_queue: Ring::with_capacity(1, 0),
            outstanding_misses: Ring::with_capacity(1, 0),
            frontend_stall: 0,
            cycle: 0,
            counters: EventCounters::default(),
            interval_phase: 0,
            fetch_width: 0,
            fb_capacity: 0,
            decode_width: 0,
            rob_capacity: 0,
            lsq_capacity: 0,
            int_width: 0,
            mem_width: 0,
            fp_width: 0,
            mshr_entries: 0,
        };
        machine.reset(config);
        machine
    }

    /// Restores the construction state for `config`, recycling every
    /// allocation (the reset-and-reuse twin of [`Machine::new`]).
    pub fn reset(&mut self, config: &CpuConfig) {
        let p = &config.params;
        self.icache.reset(64, p.icache_ways() as usize, 64);
        self.dcache.reset(64, p.dcache_ways() as usize, 64);
        self.itlb.reset(p.itlb_entries() as usize);
        self.dtlb.reset(p.value(HwParam::DtlbEntry) as usize);
        self.predictor.reset(p.value(HwParam::BranchCount));
        self.fetch_width = p.value(HwParam::FetchWidth) as usize;
        self.fb_capacity = p.value(HwParam::FetchBufferEntry) as usize;
        self.decode_width = p.value(HwParam::DecodeWidth) as usize;
        self.rob_capacity = p.value(HwParam::RobEntry) as usize;
        self.lsq_capacity = 2 * p.value(HwParam::LdqStqEntry);
        self.int_width = p.value(HwParam::IntIssueWidth) as usize;
        self.mem_width = p.mem_issue_width() as usize;
        self.fp_width = p.fp_issue_width() as usize;
        self.mshr_entries = p.value(HwParam::MshrEntry) as usize;
        self.fetch_buffer.reset(self.fb_capacity);
        self.rob.reset(self.rob_capacity);
        self.lsq_free_queue.reset(self.lsq_capacity as usize);
        self.outstanding_misses.reset(4 * self.mshr_entries);
        self.lsq_occupancy = 0;
        self.frontend_stall = 0;
        self.cycle = 0;
        self.counters = EventCounters::default();
        self.interval_phase = 0;
    }

    /// Raw counters accumulated so far.
    #[inline]
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// Current cycle.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Phase index of the most recently fetched instruction.
    #[inline]
    pub fn current_phase(&self) -> u8 {
        self.interval_phase
    }

    fn fetch_stage(&mut self, stream: &mut impl Iterator<Item = RInstr>) {
        if self.frontend_stall > 0 {
            self.frontend_stall -= 1;
            self.counters.frontend_stall_cycles += 1;
            return;
        }
        if self.fetch_buffer.len() + self.fetch_width > self.fb_capacity {
            // The fetch buffer cannot hold another full group.
            self.counters.frontend_stall_cycles += 1;
            return;
        }

        self.counters.fetch_groups += 1;
        self.counters.icache_accesses += 1;
        self.counters.itlb_accesses += 1;

        // Group head peeled out of the loop: one cache/TLB lookup per group,
        // so the loop body carries no first-iteration flag. Miss outcomes are
        // data-dependent, so their accounting is arithmetic, not branches.
        let Some(instr) = stream.next() else { return };
        let imiss = self.icache.access(instr.pc as u64) == AccessOutcome::Miss;
        self.counters.icache_misses += u64::from(imiss);
        self.frontend_stall += ICACHE_MISS_LATENCY * u32::from(imiss);
        let tmiss = !self.itlb.access(instr.pc as u64);
        self.counters.itlb_misses += u64::from(tmiss);
        self.frontend_stall += TLB_MISS_LATENCY * u32::from(tmiss);
        if self.fetch_instr(instr) {
            return;
        }
        for _ in 1..self.fetch_width {
            let Some(instr) = stream.next() else { break };
            if self.fetch_instr(instr) {
                break;
            }
        }
    }

    /// Books one fetched instruction into the buffer; returns `true` when it
    /// ends the fetch group (any mispredict, or a correctly-predicted taken
    /// branch).
    #[inline]
    fn fetch_instr(&mut self, instr: RInstr) -> bool {
        self.interval_phase = instr.flags >> 1;
        self.counters.fetched += 1;
        let mut end_group = false;
        if instr.kind == InstrKind::Branch {
            self.counters.branches += 1;
            let taken = instr.flags & 1 != 0;
            let correct = self.predictor.predict_and_update(instr.site as u16, taken);
            // Mispredict accounting is arithmetic rather than a branch: the
            // outcome is data-dependent and would mispredict on the host too.
            self.counters.branch_mispredicts += u64::from(!correct);
            self.frontend_stall += MISPREDICT_PENALTY * u32::from(!correct);
            // Any mispredict — or a correctly-predicted taken branch — ends
            // the fetch group.
            end_group = !correct | taken;
        }
        self.fetch_buffer.push_back(instr);
        end_group
    }

    fn dispatch_stage(&mut self) {
        // Issue lane per instruction class (INT/FP/MEM) and base latency per
        // class, as lookup tables: the class mix is data-dependent, so a
        // per-instruction `match` over all six kinds costs an indirect-jump
        // misprediction on most iterations. Tables plus one mem/non-mem
        // branch keep the common (non-memory) path branch-free.
        const INT: usize = 0;
        const FP: usize = 1;
        const MEM: usize = 2;
        const LANE: [usize; 6] = [INT, INT, FP, MEM, MEM, INT];
        const BASE_LATENCY: [u64; 6] = [1, 6, 4, 0, 0, 1];
        let widths = [self.int_width, self.fp_width, self.mem_width];
        let mut issued = [0usize; 3];
        let mut dispatched = 0usize;

        while dispatched < self.decode_width {
            let Some(&instr) = self.fetch_buffer.front() else {
                break;
            };
            if self.rob.len() >= self.rob_capacity {
                self.counters.backend_stall_cycles += 1;
                break;
            }

            // Dependency-induced wait: instructions with very short dependency
            // distances wait for their producers; long distances issue
            // back-to-back. Computed branch-free — the distance is
            // data-dependent, so a conditional here would mispredict.
            let dep = instr.dep as u64;
            let width = self.decode_width as u64;
            let dep_wait = u64::from(dep < width) * (1 + width.wrapping_sub(dep) / 2);

            let lane = LANE[instr.kind as usize];
            if issued[lane] >= widths[lane]
                || (lane == MEM && self.lsq_occupancy >= self.lsq_capacity)
            {
                self.counters.backend_stall_cycles += 1;
                break;
            }
            issued[lane] += 1;

            let slot = if lane != MEM {
                RobSlot {
                    complete_cycle: self.cycle + BASE_LATENCY[instr.kind as usize] + dep_wait,
                    is_store: false,
                    store_addr: 0,
                }
            } else {
                self.lsq_occupancy += 1;
                if instr.kind == InstrKind::Load {
                    // The LSQ slot frees after the *base* latency; miss
                    // penalties below extend completion, not the queue slot.
                    self.lsq_free_queue.push_back(self.cycle + 3 + dep_wait);
                    let addr = instr.addr as u64;
                    self.counters.dcache_reads += 1;
                    self.counters.dtlb_accesses += 1;
                    let mut latency: u64 = 3;
                    if !self.dtlb.access(addr) {
                        self.counters.dtlb_misses += 1;
                        latency += TLB_MISS_LATENCY as u64;
                    }
                    if self.dcache.access(addr) == AccessOutcome::Miss {
                        self.counters.dcache_misses += 1;
                        self.counters.mshr_allocations += 1;
                        latency += DCACHE_MISS_LATENCY as u64;
                        // MSHR pressure: if all MSHRs are busy the miss waits for one.
                        if self.outstanding_misses.len() >= self.mshr_entries {
                            if let Some(&oldest) = self.outstanding_misses.front() {
                                latency += oldest.saturating_sub(self.cycle);
                            }
                        }
                        self.outstanding_misses.push_back(self.cycle + latency);
                    }
                    RobSlot {
                        complete_cycle: self.cycle + latency + dep_wait,
                        is_store: false,
                        store_addr: 0,
                    }
                } else {
                    self.lsq_free_queue.push_back(self.cycle + 1 + dep_wait + 2);
                    RobSlot {
                        complete_cycle: self.cycle + 1 + dep_wait,
                        is_store: true,
                        store_addr: instr.addr,
                    }
                }
            };

            self.fetch_buffer.pop_front();
            dispatched += 1;
            self.rob.push_back(slot);
        }

        // Counter traffic hoisted out of the loop: one read-modify-write per
        // counter per cycle instead of per instruction (break paths land here
        // too, so partially-filled cycles are counted identically).
        self.counters.decoded += dispatched as u64;
        self.counters.dispatched += dispatched as u64;
        self.counters.int_issued += issued[INT] as u64;
        self.counters.fp_issued += issued[FP] as u64;
        self.counters.mem_issued += issued[MEM] as u64;
    }

    fn commit_stage(&mut self) {
        let mut committed = 0usize;
        while committed < self.decode_width {
            let Some(front) = self.rob.front() else { break };
            if front.complete_cycle > self.cycle {
                break;
            }
            let slot = self.rob.pop_front().expect("peeked above");
            committed += 1;
            self.counters.committed += 1;
            if slot.is_store {
                // Stores access the data cache at commit time.
                self.counters.dcache_writes += 1;
                self.counters.dtlb_accesses += 1;
                if !self.dtlb.access(slot.store_addr as u64) {
                    self.counters.dtlb_misses += 1;
                }
                if self.dcache.access(slot.store_addr as u64) == AccessOutcome::Miss {
                    self.counters.dcache_misses += 1;
                    self.counters.mshr_allocations += 1;
                    if self.outstanding_misses.len() < 4 * self.mshr_entries {
                        self.outstanding_misses
                            .push_back(self.cycle + DCACHE_MISS_LATENCY as u64);
                    }
                }
            }
        }
    }

    fn retire_bookkeeping(&mut self) {
        while matches!(self.lsq_free_queue.front(), Some(&t) if t <= self.cycle) {
            self.lsq_free_queue.pop_front();
            self.lsq_occupancy = self.lsq_occupancy.saturating_sub(1);
        }
        while matches!(self.outstanding_misses.front(), Some(&t) if t <= self.cycle) {
            self.outstanding_misses.pop_front();
        }
        self.counters.rob_occupancy_sum += self.rob.len() as u64;
        self.counters.fetch_buffer_occupancy_sum += self.fetch_buffer.len() as u64;
        self.counters.lsq_occupancy_sum += self.lsq_occupancy as u64;
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self, stream: &mut impl Iterator<Item = RInstr>) {
        self.cycle += 1;
        self.counters.cycles += 1;
        if self.frontend_stall > 0 && self.fetch_buffer.is_empty() && self.rob.is_empty() {
            // Fully-drained front-end stall: commit and dispatch are no-ops
            // (empty ROB / fetch buffer) and fetch only counts the stall, so
            // the cycle reduces to its bookkeeping. Exactly equivalent to the
            // general path below, just without the stage scaffolding.
            self.frontend_stall -= 1;
            self.counters.frontend_stall_cycles += 1;
            self.retire_bookkeeping();
            return;
        }
        self.commit_stage();
        self.dispatch_stage();
        self.fetch_stage(stream);
        self.retire_bookkeeping();
    }

    /// Runs until `instructions` have committed (or a generous cycle cap is
    /// hit, to guarantee termination even for pathological configurations).
    ///
    /// Unlike repeated [`Machine::step`] calls, `run` fast-forwards through
    /// stretches of front-end stall where the fetch buffer is empty: until the
    /// stall ends or the ROB head completes, every cycle is pure bookkeeping,
    /// so [`Machine::skip_stall_cycles`] advances them in closed form. The end
    /// state is bit-identical to stepping (pinned against the cycle-stepped
    /// reference pipeline in the test module); only callers that observe the
    /// machine *between* cycles — interval recording — need `step`.
    pub fn run(&mut self, stream: &mut impl Iterator<Item = RInstr>, instructions: u64) {
        let cycle_cap = self.cycle + instructions * 40 + 10_000;
        while self.counters.committed < instructions && self.cycle < cycle_cap {
            if self.frontend_stall > 1 && self.fetch_buffer.is_empty() {
                // Commit pops once the ROB head's completion cycle is
                // reached, so the skip must stop one cycle short of it.
                let next_commit = self.rob.front().map_or(u64::MAX, |s| s.complete_cycle);
                let skip = u64::from(self.frontend_stall)
                    .min(next_commit.saturating_sub(self.cycle + 1))
                    .min(cycle_cap - self.cycle);
                if skip > 1 {
                    self.skip_stall_cycles(skip);
                    continue;
                }
            } else if self.rob.len() >= self.rob_capacity
                && self.fetch_buffer.len() + self.fetch_width > self.fb_capacity
                && !self.fetch_buffer.is_empty()
            {
                // Back-pressure wait: the ROB is full (dispatch only counts a
                // backend stall) and the fetch buffer cannot take another
                // group (fetch only counts a frontend stall), so nothing
                // moves until the ROB head completes.
                let next_commit = self.rob.front().expect("ROB is full").complete_cycle;
                let skip = next_commit
                    .saturating_sub(self.cycle + 1)
                    .min(cycle_cap - self.cycle);
                if skip > 1 {
                    self.skip_backend_cycles(skip);
                    continue;
                }
            }
            self.step(stream);
        }
    }

    /// Advances `skip` cycles of pure front-end stall in closed form.
    ///
    /// Caller guarantees: the fetch buffer is empty, `frontend_stall >= skip`,
    /// and no ROB head completes inside the window. Each skipped cycle would
    /// therefore only decrement the stall, count a stall cycle and run
    /// [`Machine::retire_bookkeeping`]; the queue pops and occupancy sums
    /// below reproduce those `skip` bookkeeping passes exactly.
    fn skip_stall_cycles(&mut self, skip: u64) {
        let start = self.cycle;
        let end = start + skip;
        self.cycle = end;
        self.counters.cycles += skip;
        self.frontend_stall -= skip as u32;
        self.counters.frontend_stall_cycles += skip;
        self.counters.rob_occupancy_sum += skip * self.rob.len() as u64;
        // The fetch buffer is empty throughout: its occupancy sum gains 0.
        // The free-queue is FIFO but its times are not sorted (they mix
        // dependency waits), and bookkeeping only ever pops the front: a slot
        // is really freed at the prefix-maximum of the free times up to it,
        // because a later-freeing slot ahead of it blocks the pop. A slot
        // popped at cycle `e` counts towards the occupancy of cycles
        // `start+1 ..= e-1` (the pop precedes the sums within a cycle, and
        // every pending slot has `e > start`: the previous pass already
        // popped anything due).
        let mut freed_sum = 0u64;
        let mut effective = 0u64;
        while matches!(self.lsq_free_queue.front(), Some(&t) if t.max(effective) <= end) {
            let t = self.lsq_free_queue.pop_front().expect("peeked above");
            self.lsq_occupancy = self.lsq_occupancy.saturating_sub(1);
            effective = effective.max(t);
            freed_sum += effective - 1 - start;
        }
        self.counters.lsq_occupancy_sum += freed_sum + skip * u64::from(self.lsq_occupancy);
        while matches!(self.outstanding_misses.front(), Some(&t) if t <= end) {
            self.outstanding_misses.pop_front();
        }
    }

    /// Advances `skip` cycles of pure back-pressure wait in closed form.
    ///
    /// Caller guarantees: the ROB is full, the fetch buffer is non-empty but
    /// cannot accept another fetch group, and no ROB head completes inside the
    /// window. Each such cycle commits nothing, counts one backend stall in
    /// dispatch (the ROB-full break), counts one frontend stall in fetch
    /// (either decrementing a pending stall or hitting the buffer-full check)
    /// and runs [`Machine::retire_bookkeeping`]; the updates below reproduce
    /// those `skip` passes exactly.
    fn skip_backend_cycles(&mut self, skip: u64) {
        let start = self.cycle;
        let end = start + skip;
        self.cycle = end;
        self.counters.cycles += skip;
        self.counters.backend_stall_cycles += skip;
        self.counters.frontend_stall_cycles += skip;
        // One decrement per cycle while a front-end stall is pending; once it
        // reaches zero the buffer-full path counts the stall instead.
        self.frontend_stall -= self
            .frontend_stall
            .min(skip.min(u64::from(u32::MAX)) as u32);
        self.counters.rob_occupancy_sum += skip * self.rob.len() as u64;
        self.counters.fetch_buffer_occupancy_sum += skip * self.fetch_buffer.len() as u64;
        // Same prefix-maximum pop rule as [`Machine::skip_stall_cycles`].
        let mut freed_sum = 0u64;
        let mut effective = 0u64;
        while matches!(self.lsq_free_queue.front(), Some(&t) if t.max(effective) <= end) {
            let t = self.lsq_free_queue.pop_front().expect("peeked above");
            self.lsq_occupancy = self.lsq_occupancy.saturating_sub(1);
            effective = effective.max(t);
            freed_sum += effective - 1 - start;
        }
        self.counters.lsq_occupancy_sum += freed_sum + skip * u64::from(self.lsq_occupancy);
        while matches!(self.outstanding_misses.front(), Some(&t) if t <= end) {
            self.outstanding_misses.pop_front();
        }
    }
}
