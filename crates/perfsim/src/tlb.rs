//! Fully-associative TLB model with LRU replacement.

/// A fully-associative translation lookaside buffer over 4 KiB pages.
///
/// Tuned for the simulation hot loop: the most recently translated page
/// short-circuits the scan (page locality makes this the common case), the
/// lookup and LRU-victim scans are fused into a single pass, and
/// [`Tlb::reset`] recycles the entry arrays across simulations.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: usize,
    pages: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
    /// Page of the most recent translation and the slot holding it.
    last_page: u64,
    last_slot: usize,
}

/// Page size assumed by the TLB model.
pub const PAGE_BYTES: u64 = 4096;

/// Sentinel for "no page translated yet"; no real address maps to it.
const NO_PAGE: u64 = u64::MAX;

impl Tlb {
    /// Creates a TLB with `entries` entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "TLB must have at least one entry");
        Self {
            entries,
            pages: Vec::with_capacity(entries),
            stamps: Vec::with_capacity(entries),
            tick: 0,
            last_page: NO_PAGE,
            last_slot: 0,
        }
    }

    /// Empties the TLB and restores the construction state for `entries`
    /// entries, reusing the allocations.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn reset(&mut self, entries: usize) {
        assert!(entries > 0, "TLB must have at least one entry");
        self.entries = entries;
        self.pages.clear();
        self.stamps.clear();
        self.tick = 0;
        self.last_page = NO_PAGE;
        self.last_slot = 0;
    }

    /// Translates `addr`; returns `true` on a hit, filling the entry on a miss.
    ///
    /// The hit scan and the LRU-victim scan are separate passes: a resident
    /// page appears exactly once, so the lookup is a branch-free any-match
    /// reduction the compiler turns into vector compares, and the victim
    /// argmin (minimum stamp; stamps are unique, so ties cannot occur) is
    /// only computed on the miss path.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let page = addr / PAGE_BYTES;
        if page == self.last_page {
            self.stamps[self.last_slot] = self.tick;
            return true;
        }
        let mut found = usize::MAX;
        for (idx, &p) in self.pages.iter().enumerate() {
            if p == page {
                found = idx;
            }
        }
        if found != usize::MAX {
            self.stamps[found] = self.tick;
            self.last_page = page;
            self.last_slot = found;
            return true;
        }
        let slot = if self.pages.len() < self.entries {
            self.pages.push(page);
            self.stamps.push(self.tick);
            self.pages.len() - 1
        } else {
            let mut victim = 0usize;
            let mut victim_stamp = u64::MAX;
            for (idx, &s) in self.stamps.iter().enumerate() {
                if s < victim_stamp {
                    victim_stamp = s;
                    victim = idx;
                }
            }
            self.pages[victim] = page;
            self.stamps[victim] = self.tick;
            victim
        };
        self.last_page = page;
        self.last_slot = slot;
        false
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1ffc));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn capacity_misses_when_footprint_exceeds_entries() {
        let mut t = Tlb::new(8);
        let mut misses = 0;
        for round in 0..10u64 {
            for page in 0..16u64 {
                if !t.access(page * PAGE_BYTES + round) {
                    misses += 1;
                }
            }
        }
        // 16-page footprint over an 8-entry LRU TLB with a sequential sweep misses every
        // access after warm-up.
        assert!(misses > 100);
    }

    #[test]
    fn larger_tlb_reduces_misses() {
        let sweep: Vec<u64> = (0..2000u64).map(|i| (i % 24) * PAGE_BYTES).collect();
        let misses = |entries: usize| {
            let mut t = Tlb::new(entries);
            sweep.iter().filter(|&&a| !t.access(a)).count()
        };
        assert!(misses(32) < misses(8));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(0);
    }

    #[test]
    fn reset_matches_fresh_tlb() {
        let mut used = Tlb::new(16);
        for a in (0..400u64).map(|i| i * 777 % 64 * PAGE_BYTES) {
            used.access(a);
        }
        used.reset(8);
        assert_eq!(used.entries(), 8);
        let mut fresh = Tlb::new(8);
        for a in (0..500u64).map(|i| i * 13 % 24 * PAGE_BYTES) {
            assert_eq!(used.access(a), fresh.access(a));
        }
    }

    /// The MRU short-circuit and fused victim scan preserve the original
    /// position-then-`min_by_key` LRU semantics.
    #[test]
    fn access_sequence_matches_reference_lru() {
        struct Reference {
            entries: usize,
            pages: Vec<u64>,
            stamps: Vec<u64>,
            tick: u64,
        }
        impl Reference {
            fn access(&mut self, addr: u64) -> bool {
                self.tick += 1;
                let page = addr / PAGE_BYTES;
                if let Some(idx) = self.pages.iter().position(|&p| p == page) {
                    self.stamps[idx] = self.tick;
                    return true;
                }
                if self.pages.len() < self.entries {
                    self.pages.push(page);
                    self.stamps.push(self.tick);
                } else {
                    let victim = self
                        .stamps
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &s)| s)
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    self.pages[victim] = page;
                    self.stamps[victim] = self.tick;
                }
                false
            }
        }

        let mut fast = Tlb::new(12);
        let mut reference = Reference {
            entries: 12,
            pages: Vec::new(),
            stamps: Vec::new(),
            tick: 0,
        };
        let mut x = 0x9e37_79b9_u64;
        for i in 0..30_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Alternate a hot page set (MRU hits) with a wide cold region.
            let addr = if i % 4 < 3 {
                (x >> 40) % 8 * PAGE_BYTES + (x & 0xfff)
            } else {
                (x >> 30) % 64 * PAGE_BYTES
            };
            assert_eq!(fast.access(addr), reference.access(addr), "i {i}");
        }
    }
}
