//! Fully-associative TLB model with LRU replacement.

/// A fully-associative translation lookaside buffer over 4 KiB pages.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: usize,
    pages: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
}

/// Page size assumed by the TLB model.
pub const PAGE_BYTES: u64 = 4096;

impl Tlb {
    /// Creates a TLB with `entries` entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "TLB must have at least one entry");
        Self {
            entries,
            pages: Vec::with_capacity(entries),
            stamps: Vec::with_capacity(entries),
            tick: 0,
        }
    }

    /// Translates `addr`; returns `true` on a hit, filling the entry on a miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let page = addr / PAGE_BYTES;
        if let Some(idx) = self.pages.iter().position(|&p| p == page) {
            self.stamps[idx] = self.tick;
            return true;
        }
        if self.pages.len() < self.entries {
            self.pages.push(page);
            self.stamps.push(self.tick);
        } else {
            let victim = self
                .stamps
                .iter()
                .enumerate()
                .min_by_key(|(_, &s)| s)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.pages[victim] = page;
            self.stamps[victim] = self.tick;
        }
        false
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1ffc));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn capacity_misses_when_footprint_exceeds_entries() {
        let mut t = Tlb::new(8);
        let mut misses = 0;
        for round in 0..10u64 {
            for page in 0..16u64 {
                if !t.access(page * PAGE_BYTES + round) {
                    misses += 1;
                }
            }
        }
        // 16-page footprint over an 8-entry LRU TLB with a sequential sweep misses every
        // access after warm-up.
        assert!(misses > 100);
    }

    #[test]
    fn larger_tlb_reduces_misses() {
        let sweep: Vec<u64> = (0..2000u64).map(|i| (i % 24) * PAGE_BYTES).collect();
        let misses = |entries: usize| {
            let mut t = Tlb::new(entries);
            sweep.iter().filter(|&&a| !t.access(a)).count()
        };
        assert!(misses(32) < misses(8));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(0);
    }
}
