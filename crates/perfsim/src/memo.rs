//! Exact simulation memoization for design-space sweeps.
//!
//! The simulator reads only a projection of the hardware configuration:
//! power-only parameters (physical register counts, SRAM banking, …) never
//! reach the pipeline, associativities are folded (`ICacheWay`/`DCacheWay`
//! share one value, as do the TLBs), and the branch predictor sees
//! `BranchCount` only through its power-of-two table size. [`SimKey`] is that
//! projection made hashable: two configurations with equal keys execute the
//! exact same simulation, instruction for instruction, so a sweep can reuse
//! the whole-run [`EventCounters`] — a provably bit-identical collapse of the
//! design space along simulation-invisible axes.
//!
//! [`SimCache`] is the sharded concurrent map the sweep engine consults, with
//! hit/miss statistics for the sweep report.

use crate::events::EventCounters;
use crate::SimConfig;
use autopower_config::{CpuConfig, HwParam, Workload};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The simulation-visible projection of one `(configuration, workload, knobs)`
/// triple.
///
/// Equal keys are a proof of equal simulations: every value the pipeline,
/// caches, TLBs, predictor and stream generator read is part of the key.
/// `interval_cycles` and `event_distortion` are deliberately absent — interval
/// recording is pure observation and distortion is applied downstream of the
/// counters, so neither changes the counters this key caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimKey {
    fetch_width: u32,
    fetch_buffer_entries: u32,
    decode_width: u32,
    rob_entries: u32,
    int_issue_width: u32,
    mem_fp_issue_width: u32,
    cache_ways: u32,
    tlb_entries: u32,
    ldq_stq_entries: u32,
    mshr_entries: u32,
    /// `BranchCount` folded to the predictor's power-of-two table size: the
    /// only way the parameter reaches the simulation.
    predictor_entries: u32,
    max_instructions: u64,
    stream_seed: u64,
    workload: Workload,
}

/// Names of the numeric simulation-visible parameters, in the order
/// [`SimKey::features`] emits them.  This is the canonical surrogate feature
/// order: everything the simulator reads from the hardware configuration,
/// nothing it does not.
const FEATURE_NAMES: [&str; 11] = [
    "fetch_width",
    "fetch_buffer_entries",
    "decode_width",
    "rob_entries",
    "int_issue_width",
    "mem_fp_issue_width",
    "cache_ways",
    "tlb_entries",
    "ldq_stq_entries",
    "mshr_entries",
    "predictor_entries",
];

impl SimKey {
    /// Number of numeric features in [`SimKey::features`].
    pub const FEATURE_COUNT: usize = FEATURE_NAMES.len();

    /// Projects `(config, workload, sim)` onto the simulation-visible key.
    pub fn new(config: &CpuConfig, workload: Workload, sim: &SimConfig) -> Self {
        let p = &config.params;
        Self {
            fetch_width: p.value(HwParam::FetchWidth),
            fetch_buffer_entries: p.value(HwParam::FetchBufferEntry),
            decode_width: p.value(HwParam::DecodeWidth),
            rob_entries: p.value(HwParam::RobEntry),
            int_issue_width: p.value(HwParam::IntIssueWidth),
            mem_fp_issue_width: p.value(HwParam::MemFpIssueWidth),
            cache_ways: p.value(HwParam::CacheWay),
            tlb_entries: p.value(HwParam::DtlbEntry),
            ldq_stq_entries: p.value(HwParam::LdqStqEntry),
            mshr_entries: p.value(HwParam::MshrEntry),
            predictor_entries: (256 * p.value(HwParam::BranchCount)).next_power_of_two(),
            max_instructions: sim.max_instructions,
            stream_seed: sim.stream_seed,
            workload,
        }
    }

    /// The key's numeric parameters as an ML feature vector, in
    /// [`SimKey::feature_names`] order.
    ///
    /// Two configurations with equal feature vectors (for the same workload
    /// and simulation knobs) run bit-identical simulations — the projection
    /// that makes [`SimCache`] sound is exactly what makes these features
    /// *sufficient* for a learned surrogate of the simulator.  The workload,
    /// `max_instructions` and `stream_seed` are deliberately absent: a
    /// surrogate is trained per workload under fixed simulation knobs, and
    /// the sweep fingerprint guards those from drifting between training and
    /// inference.
    pub fn features(&self) -> [f64; Self::FEATURE_COUNT] {
        [
            f64::from(self.fetch_width),
            f64::from(self.fetch_buffer_entries),
            f64::from(self.decode_width),
            f64::from(self.rob_entries),
            f64::from(self.int_issue_width),
            f64::from(self.mem_fp_issue_width),
            f64::from(self.cache_ways),
            f64::from(self.tlb_entries),
            f64::from(self.ldq_stq_entries),
            f64::from(self.mshr_entries),
            f64::from(self.predictor_entries),
        ]
    }

    /// Names of the features [`SimKey::features`] emits, in order.
    pub fn feature_names() -> &'static [&'static str] {
        &FEATURE_NAMES
    }
}

/// Number of independent shards; bounds lock contention under parallel sweeps.
const SHARDS: usize = 16;

/// Hit/miss statistics of a [`SimCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimCacheStats {
    /// Lookups answered from the cache (simulations deduplicated away).
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
}

impl SimCacheStats {
    /// Total lookups the cache has answered (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache — never NaN: a cache with
    /// zero lookups (empty sweep, fully-resumed sweep) reports `0.0`, and
    /// reports should prefer [`SimCacheStats::lookups`] to distinguish "idle"
    /// from "no duplicates".
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A sharded map from [`SimKey`] to whole-run [`EventCounters`].
///
/// Thread-safe: workers race at most into computing the same key twice, and
/// both computations produce identical counters (the simulation is
/// deterministic in the key), so sweep output never depends on thread count
/// or interleaving.
#[derive(Debug)]
pub struct SimCache {
    shards: Vec<Mutex<HashMap<SimKey, EventCounters>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SimCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &SimKey) -> &Mutex<HashMap<SimKey, EventCounters>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h as usize) % SHARDS]
    }

    /// Returns the counters for `key`, running `simulate` on a miss.
    ///
    /// The computation runs outside the shard lock, so concurrent workers are
    /// never serialized behind a simulation.
    pub fn counters_for(
        &self,
        key: SimKey,
        simulate: impl FnOnce() -> EventCounters,
    ) -> EventCounters {
        let shard = self.shard(&key);
        if let Some(counters) = shard.lock().expect("sim cache lock poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *counters;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let counters = simulate();
        shard
            .lock()
            .expect("sim cache lock poisoned")
            .insert(key, counters);
        counters
    }

    /// Hit/miss statistics accumulated so far.
    pub fn stats(&self) -> SimCacheStats {
        SimCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct simulations stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("sim cache lock poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SimCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use autopower_config::{boom_configs, DesignSpace};

    #[test]
    fn equal_keys_for_power_only_differences() {
        // BranchCount 10 and 16 both round to a 4096-entry predictor table;
        // every other simulation-visible parameter matches.
        use autopower_config::HwParam;
        let space = DesignSpace::boom()
            .with_axis(HwParam::FetchWidth, vec![4])
            .with_axis(HwParam::DecodeWidth, vec![2])
            .with_axis(HwParam::RobEntry, vec![64])
            .with_axis(HwParam::IntIssueWidth, vec![2])
            .with_axis(HwParam::MemFpIssueWidth, vec![1])
            .with_axis(HwParam::CacheWay, vec![4])
            .with_axis(HwParam::DtlbEntry, vec![16])
            .with_axis(HwParam::BranchCount, vec![10, 16])
            .with_axis(HwParam::MshrEntry, vec![4]);
        let configs: Vec<_> = space.enumerate().collect();
        assert_eq!(configs.len(), 2);
        let (a, b) = (configs[0], configs[1]);
        let sim = SimConfig::fast();
        assert_eq!(
            SimKey::new(&a, Workload::Qsort, &sim),
            SimKey::new(&b, Workload::Qsort, &sim)
        );
        // The proof obligation behind the cache: equal keys, equal counters.
        let ca = simulate(&a, Workload::Qsort, &sim).counters;
        let cb = simulate(&b, Workload::Qsort, &sim).counters;
        assert_eq!(ca, cb);
    }

    #[test]
    fn distinct_keys_for_simulation_visible_differences() {
        let cfgs = boom_configs();
        let sim = SimConfig::fast();
        let a = SimKey::new(&cfgs[0], Workload::Qsort, &sim);
        let b = SimKey::new(&cfgs[14], Workload::Qsort, &sim);
        assert_ne!(a, b);
        // Workload and stream seed are part of the key.
        assert_ne!(a, SimKey::new(&cfgs[0], Workload::Vvadd, &sim));
        let reseeded = SimConfig {
            stream_seed: sim.stream_seed + 1,
            ..sim
        };
        assert_ne!(a, SimKey::new(&cfgs[0], Workload::Qsort, &reseeded));
    }

    #[test]
    fn interval_and_distortion_knobs_do_not_split_keys() {
        let cfg = boom_configs()[3];
        let a = SimConfig::fast();
        let b = SimConfig {
            interval_cycles: 200,
            event_distortion: 0.5,
            ..a
        };
        assert_eq!(
            SimKey::new(&cfg, Workload::Towers, &a),
            SimKey::new(&cfg, Workload::Towers, &b)
        );
    }

    #[test]
    fn cache_returns_memoized_counters_and_counts_stats() {
        let cache = SimCache::new();
        let cfg = boom_configs()[5];
        let sim = SimConfig::fast();
        let key = SimKey::new(&cfg, Workload::Median, &sim);
        let first = cache.counters_for(key, || simulate(&cfg, Workload::Median, &sim).counters);
        let second = cache.counters_for(key, || panic!("hit must not simulate"));
        assert_eq!(first, second);
        assert_eq!(cache.stats(), SimCacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn features_align_with_names_and_separate_visible_differences() {
        let cfgs = boom_configs();
        let sim = SimConfig::fast();
        let a = SimKey::new(&cfgs[0], Workload::Qsort, &sim);
        let b = SimKey::new(&cfgs[14], Workload::Qsort, &sim);
        assert_eq!(SimKey::feature_names().len(), SimKey::FEATURE_COUNT);
        assert_eq!(a.features().len(), SimKey::FEATURE_COUNT);
        assert!(a.features().iter().all(|v| v.is_finite() && *v >= 1.0));
        assert_ne!(a.features(), b.features());
        // Equal keys project onto equal feature vectors by construction.
        assert_eq!(
            a.features(),
            SimKey::new(&cfgs[0], Workload::Qsort, &sim).features()
        );
    }

    #[test]
    fn hit_rate_is_zero_when_idle() {
        let stats = SimCache::new().stats();
        assert_eq!(stats.lookups(), 0);
        let rate = stats.hit_rate();
        assert_eq!(rate, 0.0);
        assert!(!rate.is_nan(), "idle hit rate must never be NaN");
    }
}
