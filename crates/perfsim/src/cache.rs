//! Set-associative cache model with LRU replacement.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss,
}

/// Sentinel tag marking an invalid (never filled) way.
///
/// Real addresses stay far below `2^58` (the simulator's working sets live
/// around `0x8000_0000`), so after removing the set/offset bits no valid tag
/// can collide with the sentinel.
const INVALID_TAG: u64 = u64::MAX;

/// A set-associative, write-allocate cache with true-LRU replacement.
///
/// Only the presence of lines is modelled (no data); this is all the performance and
/// activity models need.
///
/// The implementation is tuned for the simulation hot loop: geometry is
/// power-of-two so indexing is shift/mask instead of division, invalid ways
/// are a sentinel tag (one comparison instead of an `Option` unpack), the most
/// recently touched line short-circuits the set scan, and [`Cache::reset`]
/// recycles the tag/stamp arrays across simulations instead of reallocating.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: usize,
    /// `log2(line_bytes)`: address-to-line shift.
    line_shift: u32,
    /// `log2(sets)`: line-to-tag shift.
    set_shift: u32,
    /// `sets - 1`: line-to-set mask.
    set_mask: u64,
    /// `tags[set * ways + way]`; [`INVALID_TAG`] means invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags` (larger is more recent; 0 is never a
    /// valid way's stamp, the first access happens at tick 1).
    stamps: Vec<u64>,
    tick: u64,
    /// Line of the most recent access (hit or fill) and the slot holding it.
    last_line: u64,
    last_slot: usize,
}

impl Cache {
    /// Creates a cache with `sets × ways` lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `sets` / `line_bytes` is not a
    /// power of two.
    pub fn new(sets: usize, ways: usize, line_bytes: u64) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one line");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            ways,
            line_shift: line_bytes.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
            set_mask: sets as u64 - 1,
            tags: vec![INVALID_TAG; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            last_line: INVALID_TAG,
            last_slot: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets() as u64 * self.ways as u64) << self.line_shift
    }

    /// Number of sets.
    fn sets(&self) -> usize {
        (self.set_mask + 1) as usize
    }

    /// Invalidates every line and restores the construction state, reusing the
    /// allocations (the geometry arguments mirror [`Cache::new`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Cache::new`].
    pub fn reset(&mut self, sets: usize, ways: usize, line_bytes: u64) {
        assert!(sets > 0 && ways > 0, "cache must have at least one line");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        self.ways = ways;
        self.line_shift = line_bytes.trailing_zeros();
        self.set_shift = sets.trailing_zeros();
        self.set_mask = sets as u64 - 1;
        let lines = sets * ways;
        self.tags.clear();
        self.tags.resize(lines, INVALID_TAG);
        self.stamps.clear();
        self.stamps.resize(lines, 0);
        self.tick = 0;
        self.last_line = INVALID_TAG;
        self.last_slot = 0;
    }

    /// Accesses `addr`, filling the line on a miss, and returns whether it hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.tick += 1;
        let line = addr >> self.line_shift;
        if line == self.last_line {
            // The previous access touched the same line; its slot is still
            // valid because only this access sequence mutates the arrays.
            self.stamps[self.last_slot] = self.tick;
            return AccessOutcome::Hit;
        }
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let base = set * self.ways;
        // Monomorphised scans for the associativities the design space uses:
        // a known trip count lets the compiler unroll the tag compare loop.
        match self.ways {
            1 => self.access_set::<1>(base, line, tag),
            2 => self.access_set::<2>(base, line, tag),
            4 => self.access_set::<4>(base, line, tag),
            8 => self.access_set::<8>(base, line, tag),
            _ => self.access_set_generic(base, line, tag, self.ways),
        }
    }

    #[inline]
    fn access_set<const WAYS: usize>(&mut self, base: usize, line: u64, tag: u64) -> AccessOutcome {
        self.access_set_generic(base, line, tag, WAYS)
    }

    /// Scans one set for `tag`, filling the LRU way on a miss.
    ///
    /// The hit scan and the victim scan are separate passes: a valid tag
    /// appears at most once per set (and no real tag equals the sentinel), so
    /// the lookup is a branch-free any-match reduction over the ways, and the
    /// victim argmin runs only on the miss path.  Victim choice is the way
    /// with the minimum raw stamp (first index wins ties): invalid ways keep
    /// stamp 0 and valid ways have stamps ≥ 1, so this is order-isomorphic to
    /// the historical `min_by_key(invalid → 0, valid → stamp + 1)` rule.
    #[inline]
    fn access_set_generic(
        &mut self,
        base: usize,
        line: u64,
        tag: u64,
        ways: usize,
    ) -> AccessOutcome {
        let set_tags = &mut self.tags[base..base + ways];
        let mut found = usize::MAX;
        for (way, &t) in set_tags.iter().enumerate() {
            if t == tag {
                found = way;
            }
        }
        if found != usize::MAX {
            self.stamps[base + found] = self.tick;
            self.last_line = line;
            self.last_slot = base + found;
            return AccessOutcome::Hit;
        }
        let set_stamps = &self.stamps[base..base + ways];
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for (way, &s) in set_stamps.iter().enumerate() {
            if s < victim_stamp {
                victim_stamp = s;
                victim = way;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
        self.last_line = line;
        self.last_slot = base + victim;
        AccessOutcome::Miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(16, 2, 64);
        assert_eq!(c.access(0x1000), AccessOutcome::Miss);
        assert_eq!(c.access(0x1000), AccessOutcome::Hit);
        assert_eq!(c.access(0x1004), AccessOutcome::Hit, "same line");
    }

    #[test]
    fn conflict_evicts_lru() {
        // Direct-mapped 1-set cache: every distinct line conflicts.
        let mut c = Cache::new(1, 2, 64);
        assert_eq!(c.access(0), AccessOutcome::Miss);
        assert_eq!(c.access(64), AccessOutcome::Miss);
        // Touch line 0 so line 64 becomes LRU.
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(128), AccessOutcome::Miss); // evicts 64
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(64), AccessOutcome::Miss);
    }

    #[test]
    fn higher_associativity_reduces_conflict_misses() {
        let trace: Vec<u64> = (0..1000u64).map(|i| (i % 6) * 4096).collect();
        let misses = |ways: usize| {
            let mut c = Cache::new(64, ways, 64);
            trace
                .iter()
                .filter(|&&a| c.access(a) == AccessOutcome::Miss)
                .count()
        };
        assert!(misses(8) < misses(2));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(8, 1, 64); // 512 B
        let stride_trace: Vec<u64> = (0..200u64).map(|i| (i % 32) * 64).collect(); // 2 KiB WS
        let misses = stride_trace
            .iter()
            .filter(|&&a| c.access(a) == AccessOutcome::Miss)
            .count();
        assert!(misses > 150);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = Cache::new(4, 2, 48);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_set_count_rejected() {
        let _ = Cache::new(6, 2, 64);
    }

    #[test]
    fn reset_matches_fresh_cache() {
        let mut used = Cache::new(64, 4, 64);
        for a in (0..5000u64).step_by(24) {
            used.access(a);
        }
        used.reset(16, 2, 64);
        let mut fresh = Cache::new(16, 2, 64);
        for a in (0..4000u64).step_by(40) {
            assert_eq!(used.access(a), fresh.access(a));
        }
    }

    #[test]
    fn capacity_is_geometry_product() {
        assert_eq!(Cache::new(64, 4, 64).capacity_bytes(), 64 * 4 * 64);
    }

    /// The hot-path rewrite (sentinel tags, MRU short-circuit, fused
    /// victim scan) preserves the original LRU semantics on an adversarial
    /// trace mixing repeats, conflicts and cold misses.
    #[test]
    fn access_sequence_matches_reference_lru() {
        // Reference model: the original Option<tag> + min_by_key formulation.
        struct Reference {
            sets: usize,
            ways: usize,
            tags: Vec<Option<u64>>,
            stamps: Vec<u64>,
            tick: u64,
        }
        impl Reference {
            fn access(&mut self, addr: u64) -> AccessOutcome {
                self.tick += 1;
                let line = addr / 64;
                let set = (line % self.sets as u64) as usize;
                let tag = line / self.sets as u64;
                let base = set * self.ways;
                for way in 0..self.ways {
                    if self.tags[base + way] == Some(tag) {
                        self.stamps[base + way] = self.tick;
                        return AccessOutcome::Hit;
                    }
                }
                let victim = (0..self.ways)
                    .min_by_key(|&way| {
                        if self.tags[base + way].is_none() {
                            0
                        } else {
                            self.stamps[base + way] + 1
                        }
                    })
                    .expect("ways > 0");
                self.tags[base + victim] = Some(tag);
                self.stamps[base + victim] = self.tick;
                AccessOutcome::Miss
            }
        }

        for ways in [1usize, 2, 3, 4, 8] {
            let sets = 8usize;
            let mut fast = Cache::new(sets, ways, 64);
            let mut reference = Reference {
                sets,
                ways,
                tags: vec![None; sets * ways],
                stamps: vec![0; sets * ways],
                tick: 0,
            };
            // Deterministic pseudo-random trace with heavy set conflicts.
            let mut x = 0x1234_5678_u64;
            for i in 0..20_000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = if i % 3 == 0 {
                    (x >> 33) % 4096 // hot 4 KiB region: hits and repeats
                } else {
                    (x >> 21) % (1 << 20) // cold 1 MiB region: conflicts
                };
                assert_eq!(
                    fast.access(addr),
                    reference.access(addr),
                    "ways {ways} i {i}"
                );
            }
        }
    }
}
