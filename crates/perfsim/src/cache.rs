//! Set-associative cache model with LRU replacement.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss,
}

/// A set-associative, write-allocate cache with true-LRU replacement.
///
/// Only the presence of lines is modelled (no data); this is all the performance and
/// activity models need.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: u64,
    /// `tags[set * ways + way]`; `None` means invalid.
    tags: Vec<Option<u64>>,
    /// LRU stamps parallel to `tags` (larger is more recent).
    stamps: Vec<u64>,
    tick: u64,
}

impl Cache {
    /// Creates a cache with `sets × ways` lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `line_bytes` is not a power of two.
    pub fn new(sets: usize, ways: usize, line_bytes: u64) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one line");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            sets,
            ways,
            line_bytes,
            tags: vec![None; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }

    /// Accesses `addr`, filling the line on a miss, and returns whether it hit.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.tick += 1;
        let line = addr / self.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let base = set * self.ways;
        // Hit path.
        for way in 0..self.ways {
            if self.tags[base + way] == Some(tag) {
                self.stamps[base + way] = self.tick;
                return AccessOutcome::Hit;
            }
        }
        // Miss: fill into the invalid or least recently used way.
        let victim = (0..self.ways)
            .min_by_key(|&way| {
                if self.tags[base + way].is_none() {
                    0
                } else {
                    self.stamps[base + way] + 1
                }
            })
            .expect("ways > 0");
        self.tags[base + victim] = Some(tag);
        self.stamps[base + victim] = self.tick;
        AccessOutcome::Miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(16, 2, 64);
        assert_eq!(c.access(0x1000), AccessOutcome::Miss);
        assert_eq!(c.access(0x1000), AccessOutcome::Hit);
        assert_eq!(c.access(0x1004), AccessOutcome::Hit, "same line");
    }

    #[test]
    fn conflict_evicts_lru() {
        // Direct-mapped 1-set cache: every distinct line conflicts.
        let mut c = Cache::new(1, 2, 64);
        assert_eq!(c.access(0), AccessOutcome::Miss);
        assert_eq!(c.access(64), AccessOutcome::Miss);
        // Touch line 0 so line 64 becomes LRU.
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(128), AccessOutcome::Miss); // evicts 64
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(64), AccessOutcome::Miss);
    }

    #[test]
    fn higher_associativity_reduces_conflict_misses() {
        let trace: Vec<u64> = (0..1000u64).map(|i| (i % 6) * 4096).collect();
        let misses = |ways: usize| {
            let mut c = Cache::new(64, ways, 64);
            trace
                .iter()
                .filter(|&&a| c.access(a) == AccessOutcome::Miss)
                .count()
        };
        assert!(misses(8) < misses(2));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(8, 1, 64); // 512 B
        let stride_trace: Vec<u64> = (0..200u64).map(|i| (i % 32) * 64).collect(); // 2 KiB WS
        let misses = stride_trace
            .iter()
            .filter(|&&a| c.access(a) == AccessOutcome::Miss)
            .count();
        assert!(misses > 150);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = Cache::new(4, 2, 48);
    }
}
