//! Branch predictor model (gshare-style with a size scaled by `BranchCount`).

/// A gshare-style direction predictor with 2-bit saturating counters.
///
/// The table size scales with the `BranchCount` hardware parameter, so larger
/// configurations predict measurably better — which is what couples the branch-related
/// event parameters to the configuration, as in a real performance simulator.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    history: u64,
    history_bits: u32,
}

impl BranchPredictor {
    /// Creates a predictor sized for a configuration with `branch_count` in-flight
    /// branches (the `BranchCount` hardware parameter).
    ///
    /// # Panics
    ///
    /// Panics if `branch_count` is zero.
    pub fn new(branch_count: u32) -> Self {
        assert!(branch_count > 0, "branch count must be positive");
        // 256 counters per BranchCount unit, rounded up to a power of two.
        let entries = (256 * branch_count as usize).next_power_of_two();
        // Direction prediction is dominated by per-site bias in the synthetic streams;
        // keep the global history out of the index so that strongly biased sites train
        // within a few visits (history aliasing would otherwise dominate mispredictions
        // for short riscv-tests-sized runs).
        let history_bits = 0;
        Self {
            counters: vec![2; entries], // weakly taken
            history: 0,
            history_bits,
        }
    }

    /// Restores the construction state for `branch_count`, reusing the counter
    /// table allocation whenever it is large enough.
    ///
    /// # Panics
    ///
    /// Panics if `branch_count` is zero.
    pub fn reset(&mut self, branch_count: u32) {
        assert!(branch_count > 0, "branch count must be positive");
        let entries = (256 * branch_count as usize).next_power_of_two();
        self.counters.clear();
        self.counters.resize(entries, 2);
        self.history = 0;
        self.history_bits = 0;
    }

    #[inline]
    fn index(&self, site: u16) -> usize {
        let mask = (self.counters.len() - 1) as u64;
        ((site as u64).wrapping_mul(0x9E37_79B9) ^ self.history) as usize & mask as usize
    }

    /// Predicts the direction of the branch at `site` and updates the predictor with the
    /// actual outcome; returns `true` if the prediction was correct.
    #[inline]
    pub fn predict_and_update(&mut self, site: u16, taken: bool) -> bool {
        let idx = self.index(site);
        let counter = self.counters[idx];
        let predicted_taken = counter >= 2;
        // Update the 2-bit counter. Both saturating directions are computed
        // unconditionally so the select compiles to a conditional move — the
        // outcome is data-dependent, exactly what branch prediction (the
        // host's!) is worst at.
        let up = (counter + 1).min(3);
        let down = counter.saturating_sub(1);
        self.counters[idx] = if taken { up } else { down };
        // Update the global history.
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
        predicted_taken == taken
    }

    /// Number of direction counters.
    pub fn table_size(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn strongly_biased_branches_are_learned() {
        let mut bp = BranchPredictor::new(8);
        let mut correct = 0;
        for i in 0..1000 {
            if bp.predict_and_update(3, true) && i >= 10 {
                correct += 1;
            }
        }
        assert!(correct > 950);
    }

    #[test]
    fn random_branches_are_hard() {
        let mut bp = BranchPredictor::new(8);
        let mut rng = StdRng::seed_from_u64(1);
        let mut correct = 0;
        let n = 4000;
        for _ in 0..n {
            let taken = rng.gen_bool(0.5);
            if bp.predict_and_update(rng.gen_range(0..64), taken) {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(acc < 0.65, "accuracy {acc}");
    }

    #[test]
    fn larger_predictor_is_at_least_as_good_on_patterned_branches() {
        // Alternating pattern over many sites causes aliasing in a small table.
        let run = |branch_count: u32| {
            let mut bp = BranchPredictor::new(branch_count);
            let mut correct = 0usize;
            let n = 20_000;
            for i in 0..n {
                let site = (i % 61) as u16;
                let taken = (i / 61) % 2 == 0;
                if bp.predict_and_update(site, taken) {
                    correct += 1;
                }
            }
            correct as f64 / n as f64
        };
        assert!(run(20) + 1e-9 >= run(1) - 0.02);
    }

    #[test]
    fn table_size_scales_with_branch_count() {
        assert!(BranchPredictor::new(20).table_size() > BranchPredictor::new(6).table_size());
    }

    #[test]
    fn reset_matches_fresh_predictor() {
        let mut used = BranchPredictor::new(20);
        for i in 0..500u16 {
            used.predict_and_update(i % 64, i % 3 == 0);
        }
        used.reset(6);
        let mut fresh = BranchPredictor::new(6);
        assert_eq!(used.table_size(), fresh.table_size());
        for i in 0..2000u16 {
            let taken = i % 7 < 3;
            assert_eq!(
                used.predict_and_update(i % 61, taken),
                fresh.predict_and_update(i % 61, taken)
            );
        }
    }
}
