//! Fixed-capacity ring buffer for the pipeline hot loop.
//!
//! The pipeline's fetch buffer, ROB and free-queues are bounded by hardware
//! parameters known at construction time, so a power-of-two ring over a plain
//! `Vec` replaces `VecDeque` on the hot path: no per-simulation allocation
//! (the buffer is recycled across `(configuration, workload)` pairs via
//! [`Ring::reset`]) and no reallocation or branchy wrap-around logic per
//! push/pop — indices are masked.

/// A FIFO queue over a fixed, power-of-two capacity buffer.
///
/// The buffer grows (doubling) only in the cold case where a queue outruns the
/// capacity hint, so pushes on the hot path are a masked store. Elements must
/// be `Copy`: slots are pre-filled and overwritten, never dropped.
#[derive(Debug, Clone)]
pub struct Ring<T: Copy> {
    buf: Vec<T>,
    mask: usize,
    head: usize,
    tail: usize,
}

impl<T: Copy> Ring<T> {
    /// Creates a ring able to hold at least `capacity` elements, with all
    /// slots pre-filled by `fill` (the value is never observed; it only keeps
    /// the buffer initialised without a `Default` bound).
    pub fn with_capacity(capacity: usize, fill: T) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        Self {
            buf: vec![fill; cap],
            mask: cap - 1,
            head: 0,
            tail: 0,
        }
    }

    /// Number of queued elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Drops all queued elements, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.head = 0;
        self.tail = 0;
    }

    /// Clears the ring and grows it to hold at least `capacity` elements,
    /// reusing the existing allocation whenever it is large enough.
    pub fn reset(&mut self, capacity: usize) {
        self.head = 0;
        self.tail = 0;
        let cap = capacity.max(1).next_power_of_two();
        if cap > self.buf.len() {
            let fill = self.buf[0];
            self.buf.resize(cap, fill);
            self.mask = cap - 1;
        }
    }

    /// Appends `value` at the back.
    #[inline]
    pub fn push_back(&mut self, value: T) {
        if self.len() == self.buf.len() {
            self.grow();
        }
        let idx = self.tail & self.mask;
        self.buf[idx] = value;
        self.tail += 1;
    }

    /// Removes and returns the front element.
    #[inline]
    pub fn pop_front(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let idx = self.head & self.mask;
        self.head += 1;
        Some(self.buf[idx])
    }

    /// The front element, if any.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self.buf[self.head & self.mask])
        }
    }

    /// Doubles the capacity, relocating the queued elements to the front of
    /// the new buffer.
    #[cold]
    fn grow(&mut self) {
        let old_cap = self.buf.len();
        let mut new_buf = vec![self.buf[0]; old_cap * 2];
        for (i, slot) in new_buf.iter_mut().take(self.len()).enumerate() {
            *slot = self.buf[(self.head + i) & self.mask];
        }
        let len = self.len();
        self.buf = new_buf;
        self.mask = self.buf.len() - 1;
        self.head = 0;
        self.tail = len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = Ring::with_capacity(4, 0u64);
        for v in 0..4 {
            r.push_back(v);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.front(), Some(&0));
        for v in 0..4 {
            assert_eq!(r.pop_front(), Some(v));
        }
        assert!(r.is_empty());
        assert_eq!(r.pop_front(), None);
    }

    #[test]
    fn wraps_around_without_growing() {
        let mut r = Ring::with_capacity(4, 0u32);
        for round in 0..100u32 {
            r.push_back(round);
            r.push_back(round + 1000);
            assert_eq!(r.pop_front(), Some(round));
            assert_eq!(r.pop_front(), Some(round + 1000));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn grows_when_capacity_exceeded() {
        let mut r = Ring::with_capacity(2, 0usize);
        for v in 0..100 {
            r.push_back(v);
        }
        assert_eq!(r.len(), 100);
        for v in 0..100 {
            assert_eq!(r.pop_front(), Some(v));
        }
    }

    #[test]
    fn grow_preserves_order_mid_wrap() {
        let mut r = Ring::with_capacity(4, 0i32);
        // Advance head so the live region wraps around the buffer end.
        for v in 0..3 {
            r.push_back(v);
        }
        r.pop_front();
        r.pop_front();
        for v in 3..10 {
            r.push_back(v);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| r.pop_front()).collect();
        assert_eq!(drained, vec![2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut r = Ring::with_capacity(8, 0u8);
        for v in 0..8 {
            r.push_back(v);
        }
        r.reset(4);
        assert!(r.is_empty());
        r.push_back(42);
        assert_eq!(r.pop_front(), Some(42));
    }

    #[test]
    fn zero_capacity_hint_is_usable() {
        let mut r = Ring::with_capacity(0, 0u8);
        r.push_back(1);
        assert_eq!(r.pop_front(), Some(1));
    }
}
