//! The cycle-level out-of-order pipeline model.
//!
//! The model tracks the structures whose occupancy and throughput determine both
//! performance and activity: fetch buffer, ROB, load/store queue, caches, TLBs and the
//! branch predictor.  It is intentionally simpler than gem5 — issue scheduling is
//! approximated by per-class bandwidth limits and dependency-derived latencies — but it
//! reacts to every hardware parameter of Table II in the qualitatively right direction,
//! which is what the power-model evaluation needs.

use crate::branch::BranchPredictor;
use crate::cache::{AccessOutcome, Cache};
use crate::events::EventCounters;
use crate::tlb::Tlb;
use autopower_config::{CpuConfig, HwParam};
use autopower_workloads::{InstrKind, Instruction, StreamGenerator};
use std::collections::VecDeque;

/// Latency of an instruction-cache miss (cycles).
const ICACHE_MISS_LATENCY: u32 = 10;
/// Latency of a data-cache miss (cycles).
const DCACHE_MISS_LATENCY: u32 = 32;
/// Latency of a TLB miss (page-table walk, cycles).
const TLB_MISS_LATENCY: u32 = 14;
/// Front-end refill penalty after a branch misprediction (cycles).
const MISPREDICT_PENALTY: u32 = 9;

#[derive(Debug, Clone, Copy)]
struct RobSlot {
    complete_cycle: u64,
    is_store: bool,
    store_addr: u64,
}

/// The pipeline simulator for one (configuration, workload) pair.
#[derive(Debug)]
pub struct Pipeline {
    config: CpuConfig,
    stream: StreamGenerator,
    icache: Cache,
    dcache: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    predictor: BranchPredictor,
    fetch_buffer: VecDeque<Instruction>,
    rob: VecDeque<RobSlot>,
    lsq_occupancy: u32,
    lsq_free_queue: VecDeque<u64>,
    outstanding_misses: VecDeque<u64>,
    frontend_stall: u32,
    cycle: u64,
    counters: EventCounters,
    interval_phase: u8,
}

impl Pipeline {
    /// Creates a pipeline for `config` executing the given instruction stream.
    pub fn new(config: CpuConfig, stream: StreamGenerator) -> Self {
        let icache_sets = 64;
        let dcache_sets = 64;
        Self {
            icache: Cache::new(icache_sets, config.params.icache_ways() as usize, 64),
            dcache: Cache::new(dcache_sets, config.params.dcache_ways() as usize, 64),
            itlb: Tlb::new(config.params.itlb_entries() as usize),
            dtlb: Tlb::new(config.params.value(HwParam::DtlbEntry) as usize),
            predictor: BranchPredictor::new(config.params.value(HwParam::BranchCount)),
            fetch_buffer: VecDeque::new(),
            rob: VecDeque::new(),
            lsq_occupancy: 0,
            lsq_free_queue: VecDeque::new(),
            outstanding_misses: VecDeque::new(),
            frontend_stall: 0,
            cycle: 0,
            counters: EventCounters::default(),
            interval_phase: 0,
            config,
            stream,
        }
    }

    /// Raw counters accumulated so far.
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Phase index of the most recently fetched instruction (used to label intervals).
    pub fn current_phase(&self) -> u8 {
        self.interval_phase
    }

    fn fetch_stage(&mut self) {
        let p = &self.config.params;
        let fetch_width = p.value(HwParam::FetchWidth) as usize;
        let fb_capacity = p.value(HwParam::FetchBufferEntry) as usize;

        if self.frontend_stall > 0 {
            self.frontend_stall -= 1;
            self.counters.frontend_stall_cycles += 1;
            return;
        }
        if self.fetch_buffer.len() + fetch_width > fb_capacity {
            // The fetch buffer cannot hold another full group.
            self.counters.frontend_stall_cycles += 1;
            return;
        }

        self.counters.fetch_groups += 1;
        self.counters.icache_accesses += 1;
        self.counters.itlb_accesses += 1;

        let mut group_pc: Option<u64> = None;
        for _ in 0..fetch_width {
            let instr = match self.stream.next() {
                Some(i) => i,
                None => break,
            };
            self.interval_phase = instr.phase;
            if group_pc.is_none() {
                group_pc = Some(instr.pc);
                // One cache/TLB lookup per fetch group.
                if self.icache.access(instr.pc) == AccessOutcome::Miss {
                    self.counters.icache_misses += 1;
                    self.frontend_stall += ICACHE_MISS_LATENCY;
                }
                if !self.itlb.access(instr.pc) {
                    self.counters.itlb_misses += 1;
                    self.frontend_stall += TLB_MISS_LATENCY;
                }
            }
            self.counters.fetched += 1;
            let mut end_group = false;
            if instr.kind == InstrKind::Branch {
                self.counters.branches += 1;
                let site = instr.branch_site.unwrap_or(0);
                let correct = self.predictor.predict_and_update(site, instr.taken);
                if !correct {
                    self.counters.branch_mispredicts += 1;
                    self.frontend_stall += MISPREDICT_PENALTY;
                    end_group = true;
                } else if instr.taken {
                    // A correctly-predicted taken branch still ends the fetch group.
                    end_group = true;
                }
            }
            self.fetch_buffer.push_back(instr);
            if end_group {
                break;
            }
        }
    }

    fn dispatch_stage(&mut self) {
        let p = &self.config.params;
        let decode_width = p.value(HwParam::DecodeWidth) as usize;
        let rob_capacity = p.value(HwParam::RobEntry) as usize;
        let lsq_capacity = 2 * p.value(HwParam::LdqStqEntry);
        let int_width = p.value(HwParam::IntIssueWidth) as usize;
        let mem_width = p.mem_issue_width() as usize;
        let fp_width = p.fp_issue_width() as usize;
        let mshr_entries = p.value(HwParam::MshrEntry) as usize;

        let mut int_issued = 0usize;
        let mut fp_issued = 0usize;
        let mut mem_issued = 0usize;
        let mut dispatched = 0usize;

        while dispatched < decode_width {
            let Some(&instr) = self.fetch_buffer.front() else {
                break;
            };
            if self.rob.len() >= rob_capacity {
                self.counters.backend_stall_cycles += 1;
                break;
            }
            // Per-class issue bandwidth.
            let class_ok = match instr.kind {
                InstrKind::IntAlu | InstrKind::MulDiv | InstrKind::Branch => int_issued < int_width,
                InstrKind::Fp => fp_issued < fp_width,
                InstrKind::Load | InstrKind::Store => {
                    mem_issued < mem_width && self.lsq_occupancy < lsq_capacity
                }
            };
            if !class_ok {
                self.counters.backend_stall_cycles += 1;
                break;
            }
            let instr = self.fetch_buffer.pop_front().expect("peeked above");
            dispatched += 1;
            self.counters.decoded += 1;
            self.counters.dispatched += 1;

            // Dependency-induced wait: instructions with very short dependency distances
            // wait for their producers; long distances issue back-to-back.
            let dep_wait = if (instr.dep_distance as usize) < decode_width {
                1 + (decode_width - instr.dep_distance as usize) as u64 / 2
            } else {
                0
            };

            let mut latency: u64 = match instr.kind {
                InstrKind::IntAlu => 1,
                InstrKind::Branch => 1,
                InstrKind::MulDiv => 6,
                InstrKind::Fp => 4,
                InstrKind::Load => 3,
                InstrKind::Store => 1,
            };

            let mut is_store = false;
            let mut store_addr = 0;
            match instr.kind {
                InstrKind::IntAlu | InstrKind::MulDiv => {
                    int_issued += 1;
                    self.counters.int_issued += 1;
                }
                InstrKind::Branch => {
                    int_issued += 1;
                    self.counters.int_issued += 1;
                }
                InstrKind::Fp => {
                    fp_issued += 1;
                    self.counters.fp_issued += 1;
                }
                InstrKind::Load => {
                    mem_issued += 1;
                    self.counters.mem_issued += 1;
                    self.lsq_occupancy += 1;
                    self.lsq_free_queue
                        .push_back(self.cycle + latency + dep_wait);
                    let addr = instr.addr.unwrap_or(0);
                    self.counters.dcache_reads += 1;
                    self.counters.dtlb_accesses += 1;
                    if !self.dtlb.access(addr) {
                        self.counters.dtlb_misses += 1;
                        latency += TLB_MISS_LATENCY as u64;
                    }
                    if self.dcache.access(addr) == AccessOutcome::Miss {
                        self.counters.dcache_misses += 1;
                        self.counters.mshr_allocations += 1;
                        latency += DCACHE_MISS_LATENCY as u64;
                        // MSHR pressure: if all MSHRs are busy the miss waits for one.
                        if self.outstanding_misses.len() >= mshr_entries {
                            if let Some(&oldest) = self.outstanding_misses.front() {
                                latency += oldest.saturating_sub(self.cycle);
                            }
                        }
                        self.outstanding_misses.push_back(self.cycle + latency);
                    }
                }
                InstrKind::Store => {
                    mem_issued += 1;
                    self.counters.mem_issued += 1;
                    self.lsq_occupancy += 1;
                    self.lsq_free_queue
                        .push_back(self.cycle + latency + dep_wait + 2);
                    is_store = true;
                    store_addr = instr.addr.unwrap_or(0);
                }
            }

            self.rob.push_back(RobSlot {
                complete_cycle: self.cycle + latency + dep_wait,
                is_store,
                store_addr,
            });
        }
    }

    fn commit_stage(&mut self) {
        let decode_width = self.config.params.value(HwParam::DecodeWidth) as usize;
        let mshr_entries = self.config.params.value(HwParam::MshrEntry) as usize;
        let mut committed = 0usize;
        while committed < decode_width {
            let Some(front) = self.rob.front() else { break };
            if front.complete_cycle > self.cycle {
                break;
            }
            let slot = self.rob.pop_front().expect("peeked above");
            committed += 1;
            self.counters.committed += 1;
            if slot.is_store {
                // Stores access the data cache at commit time.
                self.counters.dcache_writes += 1;
                self.counters.dtlb_accesses += 1;
                if !self.dtlb.access(slot.store_addr) {
                    self.counters.dtlb_misses += 1;
                }
                if self.dcache.access(slot.store_addr) == AccessOutcome::Miss {
                    self.counters.dcache_misses += 1;
                    self.counters.mshr_allocations += 1;
                    if self.outstanding_misses.len() < 4 * mshr_entries {
                        self.outstanding_misses
                            .push_back(self.cycle + DCACHE_MISS_LATENCY as u64);
                    }
                }
            }
        }
    }

    fn retire_bookkeeping(&mut self) {
        while matches!(self.lsq_free_queue.front(), Some(&t) if t <= self.cycle) {
            self.lsq_free_queue.pop_front();
            self.lsq_occupancy = self.lsq_occupancy.saturating_sub(1);
        }
        while matches!(self.outstanding_misses.front(), Some(&t) if t <= self.cycle) {
            self.outstanding_misses.pop_front();
        }
        self.counters.rob_occupancy_sum += self.rob.len() as u64;
        self.counters.fetch_buffer_occupancy_sum += self.fetch_buffer.len() as u64;
        self.counters.lsq_occupancy_sum += self.lsq_occupancy as u64;
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.counters.cycles += 1;
        self.commit_stage();
        self.dispatch_stage();
        self.fetch_stage();
        self.retire_bookkeeping();
    }

    /// Runs until `instructions` have been committed (or a generous cycle cap is hit,
    /// to guarantee termination even for pathological configurations).
    pub fn run(&mut self, instructions: u64) {
        let cycle_cap = self.cycle + instructions * 40 + 10_000;
        while self.counters.committed < instructions && self.cycle < cycle_cap {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::{boom_configs, Workload};

    fn run(cfg_idx: usize, workload: Workload, instructions: u64) -> EventCounters {
        let cfg = boom_configs()[cfg_idx];
        let stream = StreamGenerator::new(workload, 1);
        let mut pipe = Pipeline::new(cfg, stream);
        pipe.run(instructions);
        *pipe.counters()
    }

    #[test]
    fn completes_requested_instructions() {
        let c = run(7, Workload::Dhrystone, 5_000);
        assert!(c.committed >= 5_000);
        assert!(c.cycles > 0);
        assert!(c.ipc() > 0.05 && c.ipc() < 6.0, "ipc {}", c.ipc());
    }

    #[test]
    fn bigger_configs_achieve_higher_ipc() {
        let small = run(0, Workload::Dhrystone, 8_000); // C1: 1-wide
        let large = run(14, Workload::Dhrystone, 8_000); // C15: 5-wide
        assert!(
            large.ipc() > small.ipc() * 1.2,
            "C15 ipc {} vs C1 ipc {}",
            large.ipc(),
            small.ipc()
        );
    }

    #[test]
    fn branchy_workloads_mispredict_more() {
        let qsort = run(7, Workload::Qsort, 40_000);
        let vvadd = run(7, Workload::Vvadd, 40_000);
        let qsort_rate = qsort.branch_mispredicts as f64 / qsort.branches.max(1) as f64;
        let vvadd_rate = vvadd.branch_mispredicts as f64 / vvadd.branches.max(1) as f64;
        // 40 k instructions amortise the cold-start mispredictions (64 sites warming
        // 2-bit counters), which at shorter budgets floor both rates and shrink the
        // gap below the 2x this test guards.
        assert!(
            qsort_rate > 2.0 * vvadd_rate,
            "{qsort_rate} vs {vvadd_rate}"
        );
    }

    #[test]
    fn large_working_sets_miss_more() {
        let spmv = run(7, Workload::Spmv, 8_000);
        let dhry = run(7, Workload::Dhrystone, 8_000);
        let spmv_rate =
            spmv.dcache_misses as f64 / (spmv.dcache_reads + spmv.dcache_writes).max(1) as f64;
        let dhry_rate =
            dhry.dcache_misses as f64 / (dhry.dcache_reads + dhry.dcache_writes).max(1) as f64;
        assert!(spmv_rate > dhry_rate, "{spmv_rate} vs {dhry_rate}");
    }

    #[test]
    fn counters_are_internally_consistent() {
        let c = run(10, Workload::Towers, 6_000);
        assert!(c.fetched >= c.decoded);
        assert!(c.decoded >= c.committed || c.decoded + 64 >= c.committed);
        assert!(c.icache_misses <= c.icache_accesses);
        assert!(c.dcache_misses <= c.dcache_reads + c.dcache_writes + c.dcache_misses);
        assert!(c.branch_mispredicts <= c.branches);
        assert!(c.itlb_misses <= c.itlb_accesses);
        assert!(c.dtlb_misses <= c.dtlb_accesses);
        assert!(c.frontend_stall_cycles <= c.cycles);
        assert!(c.backend_stall_cycles <= c.cycles);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run(4, Workload::Median, 4_000);
        let b = run(4, Workload::Median, 4_000);
        assert_eq!(a, b);
    }
}
