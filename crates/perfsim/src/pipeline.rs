//! The cycle-level out-of-order pipeline model.
//!
//! The model tracks the structures whose occupancy and throughput determine both
//! performance and activity: fetch buffer, ROB, load/store queue, caches, TLBs and the
//! branch predictor.  It is intentionally simpler than gem5 — issue scheduling is
//! approximated by per-class bandwidth limits and dependency-derived latencies — but it
//! reacts to every hardware parameter of Table II in the qualitatively right direction,
//! which is what the power-model evaluation needs.
//!
//! [`Pipeline`] couples one [`Machine`] (the reusable, allocation-free core in
//! `machine.rs`) to one [`StreamGenerator`].  The sweep hot path bypasses this
//! type via [`crate::simulate_with`], which recycles the machine and replays
//! pre-generated instruction streams.

use crate::events::EventCounters;
use crate::machine::{compact, Machine, RInstr};
use autopower_config::CpuConfig;
use autopower_workloads::StreamGenerator;

/// The pipeline simulator for one (configuration, workload) pair.
#[derive(Debug)]
pub struct Pipeline {
    stream: StreamGenerator,
    machine: Machine,
}

/// Adapts the stream generator to the machine's compact instruction form.
struct CompactStream<'a>(&'a mut StreamGenerator);

impl Iterator for CompactStream<'_> {
    type Item = RInstr;

    #[inline]
    fn next(&mut self) -> Option<RInstr> {
        self.0.next().map(|i| compact(&i))
    }
}

impl Pipeline {
    /// Creates a pipeline for `config` executing the given instruction stream.
    pub fn new(config: CpuConfig, stream: StreamGenerator) -> Self {
        Self {
            stream,
            machine: Machine::new(&config),
        }
    }

    /// Raw counters accumulated so far.
    pub fn counters(&self) -> &EventCounters {
        self.machine.counters()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.machine.cycle()
    }

    /// Phase index of the most recently fetched instruction (used to label intervals).
    pub fn current_phase(&self) -> u8 {
        self.machine.current_phase()
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.machine.step(&mut CompactStream(&mut self.stream));
    }

    /// Runs until `instructions` have been committed (or a generous cycle cap is hit,
    /// to guarantee termination even for pathological configurations).
    pub fn run(&mut self, instructions: u64) {
        self.machine
            .run(&mut CompactStream(&mut self.stream), instructions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::{boom_configs, Workload};

    fn run(cfg_idx: usize, workload: Workload, instructions: u64) -> EventCounters {
        let cfg = boom_configs()[cfg_idx];
        let stream = StreamGenerator::new(workload, 1);
        let mut pipe = Pipeline::new(cfg, stream);
        pipe.run(instructions);
        *pipe.counters()
    }

    #[test]
    fn completes_requested_instructions() {
        let c = run(7, Workload::Dhrystone, 5_000);
        assert!(c.committed >= 5_000);
        assert!(c.cycles > 0);
        assert!(c.ipc() > 0.05 && c.ipc() < 6.0, "ipc {}", c.ipc());
    }

    #[test]
    fn bigger_configs_achieve_higher_ipc() {
        let small = run(0, Workload::Dhrystone, 8_000); // C1: 1-wide
        let large = run(14, Workload::Dhrystone, 8_000); // C15: 5-wide
        assert!(
            large.ipc() > small.ipc() * 1.2,
            "C15 ipc {} vs C1 ipc {}",
            large.ipc(),
            small.ipc()
        );
    }

    #[test]
    fn branchy_workloads_mispredict_more() {
        let qsort = run(7, Workload::Qsort, 40_000);
        let vvadd = run(7, Workload::Vvadd, 40_000);
        let qsort_rate = qsort.branch_mispredicts as f64 / qsort.branches.max(1) as f64;
        let vvadd_rate = vvadd.branch_mispredicts as f64 / vvadd.branches.max(1) as f64;
        // 40 k instructions amortise the cold-start mispredictions (64 sites warming
        // 2-bit counters), which at shorter budgets floor both rates and shrink the
        // gap below the 2x this test guards.
        assert!(
            qsort_rate > 2.0 * vvadd_rate,
            "{qsort_rate} vs {vvadd_rate}"
        );
    }

    #[test]
    fn large_working_sets_miss_more() {
        let spmv = run(7, Workload::Spmv, 8_000);
        let dhry = run(7, Workload::Dhrystone, 8_000);
        let spmv_rate =
            spmv.dcache_misses as f64 / (spmv.dcache_reads + spmv.dcache_writes).max(1) as f64;
        let dhry_rate =
            dhry.dcache_misses as f64 / (dhry.dcache_reads + dhry.dcache_writes).max(1) as f64;
        assert!(spmv_rate > dhry_rate, "{spmv_rate} vs {dhry_rate}");
    }

    #[test]
    fn counters_are_internally_consistent() {
        let c = run(10, Workload::Towers, 6_000);
        assert!(c.fetched >= c.decoded);
        assert!(c.decoded >= c.committed || c.decoded + 64 >= c.committed);
        assert!(c.icache_misses <= c.icache_accesses);
        assert!(c.dcache_misses <= c.dcache_reads + c.dcache_writes + c.dcache_misses);
        assert!(c.branch_mispredicts <= c.branches);
        assert!(c.itlb_misses <= c.itlb_accesses);
        assert!(c.dtlb_misses <= c.dtlb_accesses);
        assert!(c.frontend_stall_cycles <= c.cycles);
        assert!(c.backend_stall_cycles <= c.cycles);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run(4, Workload::Median, 4_000);
        let b = run(4, Workload::Median, 4_000);
        assert_eq!(a, b);
    }

    /// Reference transcription of the pre-optimization pipeline: `VecDeque`
    /// queues, `Option<u64>` cache tags, per-stage width lookups — the exact
    /// code this module replaced.  The optimized machine must match it
    /// counter-for-counter, cycle-for-cycle on every workload.
    mod reference {
        use crate::events::EventCounters;
        use autopower_config::{CpuConfig, HwParam};
        use autopower_workloads::{InstrKind, Instruction, StreamGenerator};
        use std::collections::VecDeque;

        const ICACHE_MISS_LATENCY: u32 = 10;
        const DCACHE_MISS_LATENCY: u32 = 32;
        const TLB_MISS_LATENCY: u32 = 14;
        const MISPREDICT_PENALTY: u32 = 9;

        #[derive(Clone, Copy, PartialEq, Eq)]
        enum AccessOutcome {
            Hit,
            Miss,
        }

        struct Cache {
            sets: usize,
            ways: usize,
            line_bytes: u64,
            tags: Vec<Option<u64>>,
            stamps: Vec<u64>,
            tick: u64,
        }

        impl Cache {
            fn new(sets: usize, ways: usize, line_bytes: u64) -> Self {
                Self {
                    sets,
                    ways,
                    line_bytes,
                    tags: vec![None; sets * ways],
                    stamps: vec![0; sets * ways],
                    tick: 0,
                }
            }

            fn access(&mut self, addr: u64) -> AccessOutcome {
                self.tick += 1;
                let line = addr / self.line_bytes;
                let set = (line % self.sets as u64) as usize;
                let tag = line / self.sets as u64;
                let base = set * self.ways;
                for way in 0..self.ways {
                    if self.tags[base + way] == Some(tag) {
                        self.stamps[base + way] = self.tick;
                        return AccessOutcome::Hit;
                    }
                }
                let victim = (0..self.ways)
                    .min_by_key(|&way| {
                        if self.tags[base + way].is_none() {
                            0
                        } else {
                            self.stamps[base + way] + 1
                        }
                    })
                    .expect("ways > 0");
                self.tags[base + victim] = Some(tag);
                self.stamps[base + victim] = self.tick;
                AccessOutcome::Miss
            }
        }

        struct Tlb {
            entries: usize,
            pages: Vec<u64>,
            stamps: Vec<u64>,
            tick: u64,
        }

        impl Tlb {
            fn new(entries: usize) -> Self {
                Self {
                    entries,
                    pages: Vec::new(),
                    stamps: Vec::new(),
                    tick: 0,
                }
            }

            fn access(&mut self, addr: u64) -> bool {
                self.tick += 1;
                let page = addr / 4096;
                if let Some(idx) = self.pages.iter().position(|&p| p == page) {
                    self.stamps[idx] = self.tick;
                    return true;
                }
                if self.pages.len() < self.entries {
                    self.pages.push(page);
                    self.stamps.push(self.tick);
                } else {
                    let victim = self
                        .stamps
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &s)| s)
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    self.pages[victim] = page;
                    self.stamps[victim] = self.tick;
                }
                false
            }
        }

        #[derive(Clone, Copy)]
        struct RobSlot {
            complete_cycle: u64,
            is_store: bool,
            store_addr: u64,
        }

        pub struct ReferencePipeline {
            config: CpuConfig,
            stream: StreamGenerator,
            icache: Cache,
            dcache: Cache,
            itlb: Tlb,
            dtlb: Tlb,
            predictor: crate::BranchPredictor,
            fetch_buffer: VecDeque<Instruction>,
            rob: VecDeque<RobSlot>,
            lsq_occupancy: u32,
            lsq_free_queue: VecDeque<u64>,
            outstanding_misses: VecDeque<u64>,
            frontend_stall: u32,
            cycle: u64,
            pub counters: EventCounters,
        }

        impl ReferencePipeline {
            pub fn new(config: CpuConfig, stream: StreamGenerator) -> Self {
                Self {
                    icache: Cache::new(64, config.params.icache_ways() as usize, 64),
                    dcache: Cache::new(64, config.params.dcache_ways() as usize, 64),
                    itlb: Tlb::new(config.params.itlb_entries() as usize),
                    dtlb: Tlb::new(config.params.value(HwParam::DtlbEntry) as usize),
                    predictor: crate::BranchPredictor::new(
                        config.params.value(HwParam::BranchCount),
                    ),
                    fetch_buffer: VecDeque::new(),
                    rob: VecDeque::new(),
                    lsq_occupancy: 0,
                    lsq_free_queue: VecDeque::new(),
                    outstanding_misses: VecDeque::new(),
                    frontend_stall: 0,
                    cycle: 0,
                    counters: EventCounters::default(),
                    config,
                    stream,
                }
            }

            fn fetch_stage(&mut self) {
                let p = &self.config.params;
                let fetch_width = p.value(HwParam::FetchWidth) as usize;
                let fb_capacity = p.value(HwParam::FetchBufferEntry) as usize;
                if self.frontend_stall > 0 {
                    self.frontend_stall -= 1;
                    self.counters.frontend_stall_cycles += 1;
                    return;
                }
                if self.fetch_buffer.len() + fetch_width > fb_capacity {
                    self.counters.frontend_stall_cycles += 1;
                    return;
                }
                self.counters.fetch_groups += 1;
                self.counters.icache_accesses += 1;
                self.counters.itlb_accesses += 1;
                let mut group_pc: Option<u64> = None;
                for _ in 0..fetch_width {
                    let instr = match self.stream.next() {
                        Some(i) => i,
                        None => break,
                    };
                    if group_pc.is_none() {
                        group_pc = Some(instr.pc);
                        if self.icache.access(instr.pc) == AccessOutcome::Miss {
                            self.counters.icache_misses += 1;
                            self.frontend_stall += ICACHE_MISS_LATENCY;
                        }
                        if !self.itlb.access(instr.pc) {
                            self.counters.itlb_misses += 1;
                            self.frontend_stall += TLB_MISS_LATENCY;
                        }
                    }
                    self.counters.fetched += 1;
                    let mut end_group = false;
                    if instr.kind == InstrKind::Branch {
                        self.counters.branches += 1;
                        let site = instr.branch_site.unwrap_or(0);
                        let correct = self.predictor.predict_and_update(site, instr.taken);
                        if !correct {
                            self.counters.branch_mispredicts += 1;
                            self.frontend_stall += MISPREDICT_PENALTY;
                            end_group = true;
                        } else if instr.taken {
                            end_group = true;
                        }
                    }
                    self.fetch_buffer.push_back(instr);
                    if end_group {
                        break;
                    }
                }
            }

            fn dispatch_stage(&mut self) {
                let p = &self.config.params;
                let decode_width = p.value(HwParam::DecodeWidth) as usize;
                let rob_capacity = p.value(HwParam::RobEntry) as usize;
                let lsq_capacity = 2 * p.value(HwParam::LdqStqEntry);
                let int_width = p.value(HwParam::IntIssueWidth) as usize;
                let mem_width = p.mem_issue_width() as usize;
                let fp_width = p.fp_issue_width() as usize;
                let mshr_entries = p.value(HwParam::MshrEntry) as usize;
                let mut int_issued = 0usize;
                let mut fp_issued = 0usize;
                let mut mem_issued = 0usize;
                let mut dispatched = 0usize;
                while dispatched < decode_width {
                    let Some(&instr) = self.fetch_buffer.front() else {
                        break;
                    };
                    if self.rob.len() >= rob_capacity {
                        self.counters.backend_stall_cycles += 1;
                        break;
                    }
                    let class_ok = match instr.kind {
                        InstrKind::IntAlu | InstrKind::MulDiv | InstrKind::Branch => {
                            int_issued < int_width
                        }
                        InstrKind::Fp => fp_issued < fp_width,
                        InstrKind::Load | InstrKind::Store => {
                            mem_issued < mem_width && self.lsq_occupancy < lsq_capacity
                        }
                    };
                    if !class_ok {
                        self.counters.backend_stall_cycles += 1;
                        break;
                    }
                    let instr = self.fetch_buffer.pop_front().expect("peeked above");
                    dispatched += 1;
                    self.counters.decoded += 1;
                    self.counters.dispatched += 1;
                    let dep_wait = if (instr.dep_distance as usize) < decode_width {
                        1 + (decode_width - instr.dep_distance as usize) as u64 / 2
                    } else {
                        0
                    };
                    let mut latency: u64 = match instr.kind {
                        InstrKind::IntAlu => 1,
                        InstrKind::Branch => 1,
                        InstrKind::MulDiv => 6,
                        InstrKind::Fp => 4,
                        InstrKind::Load => 3,
                        InstrKind::Store => 1,
                    };
                    let mut is_store = false;
                    let mut store_addr = 0;
                    match instr.kind {
                        InstrKind::IntAlu | InstrKind::MulDiv | InstrKind::Branch => {
                            int_issued += 1;
                            self.counters.int_issued += 1;
                        }
                        InstrKind::Fp => {
                            fp_issued += 1;
                            self.counters.fp_issued += 1;
                        }
                        InstrKind::Load => {
                            mem_issued += 1;
                            self.counters.mem_issued += 1;
                            self.lsq_occupancy += 1;
                            self.lsq_free_queue
                                .push_back(self.cycle + latency + dep_wait);
                            let addr = instr.addr.unwrap_or(0);
                            self.counters.dcache_reads += 1;
                            self.counters.dtlb_accesses += 1;
                            if !self.dtlb.access(addr) {
                                self.counters.dtlb_misses += 1;
                                latency += TLB_MISS_LATENCY as u64;
                            }
                            if self.dcache.access(addr) == AccessOutcome::Miss {
                                self.counters.dcache_misses += 1;
                                self.counters.mshr_allocations += 1;
                                latency += DCACHE_MISS_LATENCY as u64;
                                if self.outstanding_misses.len() >= mshr_entries {
                                    if let Some(&oldest) = self.outstanding_misses.front() {
                                        latency += oldest.saturating_sub(self.cycle);
                                    }
                                }
                                self.outstanding_misses.push_back(self.cycle + latency);
                            }
                        }
                        InstrKind::Store => {
                            mem_issued += 1;
                            self.counters.mem_issued += 1;
                            self.lsq_occupancy += 1;
                            self.lsq_free_queue
                                .push_back(self.cycle + latency + dep_wait + 2);
                            is_store = true;
                            store_addr = instr.addr.unwrap_or(0);
                        }
                    }
                    self.rob.push_back(RobSlot {
                        complete_cycle: self.cycle + latency + dep_wait,
                        is_store,
                        store_addr,
                    });
                }
            }

            fn commit_stage(&mut self) {
                let decode_width = self.config.params.value(HwParam::DecodeWidth) as usize;
                let mshr_entries = self.config.params.value(HwParam::MshrEntry) as usize;
                let mut committed = 0usize;
                while committed < decode_width {
                    let Some(front) = self.rob.front() else { break };
                    if front.complete_cycle > self.cycle {
                        break;
                    }
                    let slot = self.rob.pop_front().expect("peeked above");
                    committed += 1;
                    self.counters.committed += 1;
                    if slot.is_store {
                        self.counters.dcache_writes += 1;
                        self.counters.dtlb_accesses += 1;
                        if !self.dtlb.access(slot.store_addr) {
                            self.counters.dtlb_misses += 1;
                        }
                        if self.dcache.access(slot.store_addr) == AccessOutcome::Miss {
                            self.counters.dcache_misses += 1;
                            self.counters.mshr_allocations += 1;
                            if self.outstanding_misses.len() < 4 * mshr_entries {
                                self.outstanding_misses
                                    .push_back(self.cycle + DCACHE_MISS_LATENCY as u64);
                            }
                        }
                    }
                }
            }

            fn retire_bookkeeping(&mut self) {
                while matches!(self.lsq_free_queue.front(), Some(&t) if t <= self.cycle) {
                    self.lsq_free_queue.pop_front();
                    self.lsq_occupancy = self.lsq_occupancy.saturating_sub(1);
                }
                while matches!(self.outstanding_misses.front(), Some(&t) if t <= self.cycle) {
                    self.outstanding_misses.pop_front();
                }
                self.counters.rob_occupancy_sum += self.rob.len() as u64;
                self.counters.fetch_buffer_occupancy_sum += self.fetch_buffer.len() as u64;
                self.counters.lsq_occupancy_sum += self.lsq_occupancy as u64;
            }

            pub fn run(&mut self, instructions: u64) {
                let cycle_cap = self.cycle + instructions * 40 + 10_000;
                while self.counters.committed < instructions && self.cycle < cycle_cap {
                    self.cycle += 1;
                    self.counters.cycles += 1;
                    self.commit_stage();
                    self.dispatch_stage();
                    self.fetch_stage();
                    self.retire_bookkeeping();
                }
            }
        }
    }

    #[test]
    fn machine_matches_reference_pipeline_bit_for_bit() {
        use autopower_config::DesignSpace;
        let mut configs = boom_configs().to_vec();
        configs.extend(DesignSpace::boom().sample(6, 99));
        for (i, cfg) in configs.iter().enumerate().step_by(3) {
            for workload in [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd] {
                let mut reference =
                    reference::ReferencePipeline::new(*cfg, StreamGenerator::new(workload, 7));
                reference.run(3_000);
                let mut pipe = Pipeline::new(*cfg, StreamGenerator::new(workload, 7));
                pipe.run(3_000);
                assert_eq!(
                    reference.counters,
                    *pipe.counters(),
                    "config {i} workload {workload:?}"
                );
            }
        }
    }
}
