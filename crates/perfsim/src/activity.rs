//! Derivation of *true* micro-architectural activity from the pipeline counters.
//!
//! The golden power flow (the PrimePower substitute) consumes this activity; the
//! architecture-level models never see it directly — they only see the (possibly
//! distorted) [`EventParams`](crate::EventParams) and, for training configurations, the
//! labels extracted from golden reports.

use crate::events::EventCounters;
use autopower_config::{sram_positions, Component, CpuConfig, HwParam, SramPositionId};
use serde::Serialize;

/// True activity of one component over a window of cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ComponentActivity {
    /// Fraction of cycles in which the clocks of the component's *gated* registers are
    /// enabled (the true `α` of Eq. 3).
    pub clock_active_rate: f64,
    /// Average fraction of the component's registers whose data input toggles per cycle.
    pub reg_toggle_rate: f64,
    /// Switching-activity factor of the component's combinational logic (0–1).
    pub comb_activity: f64,
}

/// True SRAM activity of one SRAM Position over a window of cycles.
///
/// Rates are *position-level* totals (summed over all banks); per-block frequencies are
/// obtained by dividing by the block count of the position's netlist entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PositionActivity {
    /// The SRAM Position.
    pub position: SramPositionId,
    /// Read accesses per cycle (position-level).
    pub reads_per_cycle: f64,
    /// Write accesses per cycle (position-level), already in "one write = all mask
    /// sectors valid" units.
    pub writes_per_cycle: f64,
}

/// True activity of the whole core over a window of cycles.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ActivitySnapshot {
    /// Per-component activity, indexed by [`Component::ALL`] order.
    pub components: Vec<ComponentActivity>,
    /// Per-SRAM-Position activity, in catalogue order.
    pub positions: Vec<PositionActivity>,
}

impl ActivitySnapshot {
    /// Activity of one component.
    pub fn component(&self, component: Component) -> ComponentActivity {
        self.components[component.index()]
    }

    /// Activity of one SRAM Position, if it exists in the catalogue.
    pub fn position(&self, position: SramPositionId) -> Option<PositionActivity> {
        self.positions
            .iter()
            .copied()
            .find(|p| p.position == position)
    }
}

/// Per-interval record: the interval's raw counters plus its derived true activity.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IntervalRecord {
    /// Cycle at which the interval starts.
    pub start_cycle: u64,
    /// Raw counters accumulated during the interval.
    pub counters: EventCounters,
    /// True activity during the interval.
    pub activity: ActivitySnapshot,
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.02, 0.98)
}

/// Derives the true activity of a window from its counters.
pub fn derive_activity(delta: &EventCounters, config: &CpuConfig) -> ActivitySnapshot {
    use HwParam::*;
    let cyc = delta.cycles.max(1) as f64;
    let v = |p: HwParam| config.params.value(p) as f64;
    let per_cyc = |x: u64| x as f64 / cyc;

    let fetch_util = per_cyc(delta.fetch_groups);
    let fetch_instr_util = per_cyc(delta.fetched) / v(FetchWidth);
    let decode_util = per_cyc(delta.decoded) / v(DecodeWidth);
    let dispatch_util = per_cyc(delta.dispatched) / v(DecodeWidth);
    let commit_util = per_cyc(delta.committed) / v(DecodeWidth);
    let int_util = per_cyc(delta.int_issued) / v(IntIssueWidth);
    let fp_util = per_cyc(delta.fp_issued) / config.params.fp_issue_width() as f64;
    let mem_util = per_cyc(delta.mem_issued) / config.params.mem_issue_width() as f64;
    let dcache_util =
        per_cyc(delta.dcache_reads + delta.dcache_writes) / config.params.mem_issue_width() as f64;
    let rob_occ = per_cyc(delta.rob_occupancy_sum) / v(RobEntry);
    let lsq_occ = per_cyc(delta.lsq_occupancy_sum) / (2.0 * v(LdqStqEntry));
    let fb_occ = per_cyc(delta.fetch_buffer_occupancy_sum) / v(FetchBufferEntry);
    let dmiss_rate = per_cyc(delta.dcache_misses);

    let components: Vec<ComponentActivity> = Component::ALL
        .iter()
        .map(|&c| {
            let alpha = match c {
                Component::BpTage | Component::BpBtb | Component::BpOthers => {
                    0.10 + 0.80 * fetch_util
                }
                Component::ICacheTagArray
                | Component::ICacheDataArray
                | Component::ICacheOthers => 0.08 + 0.85 * fetch_util,
                Component::Rnu => 0.06 + 0.85 * decode_util,
                Component::Rob => 0.08 + 0.50 * dispatch_util + 0.35 * rob_occ,
                Component::Regfile => 0.06 + 0.45 * int_util + 0.25 * fp_util + 0.20 * mem_util,
                Component::DCacheTagArray
                | Component::DCacheDataArray
                | Component::DCacheOthers => 0.07 + 0.80 * dcache_util,
                Component::FpIsu => 0.08 + 0.80 * fp_util,
                Component::IntIsu => 0.08 + 0.80 * int_util,
                Component::MemIsu => 0.08 + 0.80 * mem_util,
                Component::ITlb => 0.06 + 0.70 * fetch_util,
                Component::DTlb => 0.06 + 0.70 * mem_util,
                Component::FuPool => 0.05 + 0.40 * int_util + 0.30 * fp_util + 0.25 * mem_util,
                Component::OtherLogic => 0.15 + 0.50 * commit_util,
                Component::DCacheMshr => 0.04 + (20.0 * dmiss_rate).min(0.8),
                Component::Lsu => 0.07 + 0.60 * mem_util + 0.30 * lsq_occ,
                Component::Ifu => 0.08 + 0.60 * fetch_instr_util + 0.30 * fb_occ,
            };
            let alpha = clamp01(alpha);
            ComponentActivity {
                clock_active_rate: alpha,
                reg_toggle_rate: clamp01(0.30 * alpha + 0.02),
                comb_activity: clamp01(0.25 * alpha + 0.03),
            }
        })
        .collect();

    let positions: Vec<PositionActivity> = sram_positions()
        .iter()
        .map(|p| {
            let (reads, writes) = match (p.id.component, p.id.name) {
                (Component::BpTage, "tage_table") => {
                    (per_cyc(delta.fetch_groups), per_cyc(delta.branches))
                }
                (Component::BpTage, "tage_meta") => (
                    per_cyc(delta.fetch_groups),
                    per_cyc(delta.branch_mispredicts) + 0.1 * per_cyc(delta.branches),
                ),
                (Component::BpBtb, "btb_data") => (
                    per_cyc(delta.fetch_groups),
                    per_cyc(delta.branch_mispredicts),
                ),
                (Component::BpBtb, "btb_tag") => (
                    per_cyc(delta.fetch_groups),
                    per_cyc(delta.branch_mispredicts),
                ),
                (Component::ICacheTagArray, "itag") => {
                    (per_cyc(delta.icache_accesses), per_cyc(delta.icache_misses))
                }
                (Component::ICacheDataArray, "idata") => {
                    (per_cyc(delta.icache_accesses), per_cyc(delta.icache_misses))
                }
                (Component::DCacheTagArray, "dtag") => (
                    per_cyc(delta.dcache_reads + delta.dcache_writes),
                    per_cyc(delta.dcache_misses),
                ),
                (Component::DCacheDataArray, "ddata") => (
                    per_cyc(delta.dcache_reads) + per_cyc(delta.dcache_misses),
                    per_cyc(delta.dcache_writes) + per_cyc(delta.dcache_misses),
                ),
                (Component::Rob, "rob_meta") => {
                    (per_cyc(delta.committed), per_cyc(delta.dispatched))
                }
                (Component::Regfile, "int_rf") => (
                    2.0 * per_cyc(delta.int_issued) + per_cyc(delta.mem_issued),
                    0.9 * per_cyc(delta.int_issued) + 0.5 * per_cyc(delta.mem_issued),
                ),
                (Component::Regfile, "fp_rf") => {
                    (2.0 * per_cyc(delta.fp_issued), per_cyc(delta.fp_issued))
                }
                (Component::ITlb, "itlb_array") => {
                    (per_cyc(delta.itlb_accesses), per_cyc(delta.itlb_misses))
                }
                (Component::DTlb, "dtlb_array") => {
                    (per_cyc(delta.dtlb_accesses), per_cyc(delta.dtlb_misses))
                }
                (Component::DCacheMshr, "mshr_table") => (
                    per_cyc(delta.dcache_misses),
                    per_cyc(delta.mshr_allocations),
                ),
                (Component::Lsu, "ldq_data") => (
                    0.5 * per_cyc(delta.mem_issued),
                    0.6 * per_cyc(delta.mem_issued),
                ),
                (Component::Lsu, "stq_data") => (
                    0.45 * per_cyc(delta.mem_issued),
                    0.4 * per_cyc(delta.mem_issued),
                ),
                (Component::Ifu, "ftq_ghist") => (
                    per_cyc(delta.branch_mispredicts) + 0.1 * per_cyc(delta.fetch_groups),
                    per_cyc(delta.fetch_groups),
                ),
                (Component::Ifu, "ftq_meta") => {
                    (per_cyc(delta.branches), per_cyc(delta.fetch_groups))
                }
                (Component::Ifu, "fetch_buffer") => {
                    (per_cyc(delta.decoded), per_cyc(delta.fetched))
                }
                _ => unreachable!("no activity rule for SRAM position {}", p.id),
            };
            PositionActivity {
                position: p.id,
                reads_per_cycle: reads.max(0.0),
                writes_per_cycle: writes.max(0.0),
            }
        })
        .collect();

    ActivitySnapshot {
        components,
        positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::boom_configs;

    fn busy_counters(cycles: u64) -> EventCounters {
        EventCounters {
            cycles,
            committed: cycles,
            fetched: 2 * cycles,
            fetch_groups: cycles / 2,
            decoded: cycles,
            dispatched: cycles,
            int_issued: cycles / 2,
            fp_issued: cycles / 8,
            mem_issued: cycles / 3,
            branches: cycles / 6,
            branch_mispredicts: cycles / 80,
            icache_accesses: cycles / 2,
            icache_misses: cycles / 100,
            dcache_reads: cycles / 4,
            dcache_writes: cycles / 8,
            dcache_misses: cycles / 60,
            itlb_accesses: cycles / 2,
            itlb_misses: cycles / 500,
            dtlb_accesses: cycles / 3,
            dtlb_misses: cycles / 300,
            mshr_allocations: cycles / 60,
            rob_occupancy_sum: 30 * cycles,
            fetch_buffer_occupancy_sum: 4 * cycles,
            lsq_occupancy_sum: 6 * cycles,
            frontend_stall_cycles: cycles / 10,
            backend_stall_cycles: cycles / 8,
        }
    }

    #[test]
    fn activity_in_unit_range() {
        let cfg = boom_configs()[7];
        let a = derive_activity(&busy_counters(10_000), &cfg);
        assert_eq!(a.components.len(), 22);
        assert_eq!(a.positions.len(), sram_positions().len());
        for c in &a.components {
            assert!((0.0..=1.0).contains(&c.clock_active_rate));
            assert!((0.0..=1.0).contains(&c.reg_toggle_rate));
            assert!((0.0..=1.0).contains(&c.comb_activity));
        }
        for p in &a.positions {
            assert!(p.reads_per_cycle >= 0.0 && p.reads_per_cycle.is_finite());
            assert!(p.writes_per_cycle >= 0.0 && p.writes_per_cycle.is_finite());
        }
    }

    #[test]
    fn idle_machine_has_low_activity() {
        let cfg = boom_configs()[7];
        let idle = EventCounters {
            cycles: 10_000,
            ..EventCounters::default()
        };
        let busy = derive_activity(&busy_counters(10_000), &cfg);
        let quiet = derive_activity(&idle, &cfg);
        for c in Component::ALL {
            assert!(
                quiet.component(c).clock_active_rate <= busy.component(c).clock_active_rate,
                "{c}"
            );
        }
    }

    #[test]
    fn memory_heavy_window_raises_dcache_activity() {
        let cfg = boom_configs()[7];
        let mut mem_heavy = busy_counters(10_000);
        mem_heavy.dcache_reads *= 3;
        mem_heavy.mem_issued *= 2;
        let base = derive_activity(&busy_counters(10_000), &cfg);
        let heavy = derive_activity(&mem_heavy, &cfg);
        assert!(
            heavy
                .component(Component::DCacheDataArray)
                .clock_active_rate
                > base.component(Component::DCacheDataArray).clock_active_rate
        );
        let pos = autopower_config::sram_positions_for(Component::DCacheDataArray)[0].id;
        assert!(
            heavy.position(pos).unwrap().reads_per_cycle
                > base.position(pos).unwrap().reads_per_cycle
        );
    }

    #[test]
    fn zero_cycles_does_not_divide_by_zero() {
        let cfg = boom_configs()[0];
        let a = derive_activity(&EventCounters::default(), &cfg);
        assert!(a.components.iter().all(|c| c.clock_active_rate.is_finite()));
    }
}
