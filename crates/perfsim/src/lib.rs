//! Cycle-level out-of-order CPU performance simulator ("gem5 substitute").
//!
//! [`simulate`] executes a synthetic instruction stream for one `(configuration,
//! workload)` pair and returns a [`SimResult`] containing:
//!
//! * the raw, true [`EventCounters`] of the run,
//! * the architecture-level [`EventParams`] — the `E` features of the power models,
//!   optionally distorted to emulate performance-simulator inaccuracy,
//! * the true [`ActivitySnapshot`] consumed by the golden power flow,
//! * per-interval records (default 50 cycles, matching Table IV of the paper) used for
//!   time-based power-trace experiments.
//!
//! # Example
//!
//! ```
//! use autopower_config::{boom_configs, Workload};
//! use autopower_perfsim::{simulate, SimConfig};
//!
//! let cfg = boom_configs()[7];
//! let sim = SimConfig { max_instructions: 3_000, ..SimConfig::default() };
//! let result = simulate(&cfg, Workload::Dhrystone, &sim);
//! assert!(result.ipc() > 0.0);
//! assert!(!result.intervals.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod branch;
mod cache;
mod events;
mod machine;
mod memo;
mod pipeline;
mod ring;
mod tlb;

pub use activity::{
    derive_activity, ActivitySnapshot, ComponentActivity, IntervalRecord, PositionActivity,
};
pub use branch::BranchPredictor;
pub use cache::{AccessOutcome, Cache};
pub use events::{EventCounters, EventParams};
pub use memo::{SimCache, SimCacheStats, SimKey};
pub use pipeline::Pipeline;
pub use ring::Ring;
pub use tlb::Tlb;

use autopower_config::{CpuConfig, Workload};
use autopower_workloads::StreamGenerator;
use machine::{compact, Machine, RInstr};
use serde::Serialize;

/// Knobs of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SimConfig {
    /// Number of instructions to commit before stopping.
    pub max_instructions: u64,
    /// Length of one activity interval in cycles (the paper's power-trace step is 50).
    pub interval_cycles: u32,
    /// Relative magnitude of the simulator-inaccuracy distortion applied to the reported
    /// event parameters (0.0 = perfect simulator).
    pub event_distortion: f64,
    /// Seed of the synthetic instruction stream.
    pub stream_seed: u64,
}

impl SimConfig {
    /// Configuration used by the paper-scale experiments (50 k instructions per run).
    pub fn paper() -> Self {
        Self {
            max_instructions: 50_000,
            interval_cycles: 50,
            event_distortion: 0.08,
            stream_seed: 2024,
        }
    }

    /// A small, fast configuration for unit and integration tests.
    pub fn fast() -> Self {
        Self {
            max_instructions: 6_000,
            ..Self::paper()
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Result of simulating one `(configuration, workload)` pair.
#[derive(Debug, Clone, Serialize)]
pub struct SimResult {
    /// The simulated configuration.
    pub config: CpuConfig,
    /// The executed workload.
    pub workload: Workload,
    /// The simulation knobs used.
    pub sim_config: SimConfig,
    /// True counters of the whole run.
    pub counters: EventCounters,
    /// Architecture-level event parameters of the whole run (possibly distorted).
    pub events: EventParams,
    /// True activity of the whole run (golden-flow input).
    pub activity: ActivitySnapshot,
    /// Per-interval records in execution order.
    pub intervals: Vec<IntervalRecord>,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.counters.ipc()
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.counters.cycles
    }

    /// Event parameters of one interval, derived with this run's distortion setting.
    pub fn interval_events(&self, interval: &IntervalRecord) -> EventParams {
        EventParams::from_counters(
            &interval.counters,
            self.config.id,
            self.workload,
            self.sim_config.event_distortion,
        )
    }
}

/// Maximum number of instruction streams a [`SimScratch`] keeps materialized.
///
/// A sweep touches one stream per `(workload, seed)` pair; the paper flow uses
/// at most the 10 benchmark workloads with one seed, so eight entries cover
/// the realistic working set while bounding memory for adversarial callers.
const MAX_REPLAY_STREAMS: usize = 8;

/// One materialized instruction stream: the compact instructions produced by a
/// [`StreamGenerator`] so far, extendable on demand.
#[derive(Debug)]
struct ReplayEntry {
    workload: Workload,
    seed: u64,
    generator: StreamGenerator,
    instrs: Vec<RInstr>,
}

/// Replays a materialized stream from the start, generating further
/// instructions only past the high-water mark of previous runs.
struct ReplayCursor<'a> {
    entry: &'a mut ReplayEntry,
    pos: usize,
}

impl Iterator for ReplayCursor<'_> {
    type Item = RInstr;

    #[inline]
    fn next(&mut self) -> Option<RInstr> {
        if self.pos == self.entry.instrs.len() {
            let instr = self.entry.generator.next()?;
            self.entry.instrs.push(compact(&instr));
        }
        let instr = self.entry.instrs[self.pos];
        self.pos += 1;
        Some(instr)
    }
}

/// Reusable state for allocation-free simulation.
///
/// A scratch owns the pipeline machine (caches, TLBs, predictor, queues — all
/// reset-and-reused between runs) and the materialized instruction streams, so
/// repeated [`simulate_with`] / [`simulate_counters_with`] calls touch the
/// allocator only to grow past previous high-water marks. Sweep workers hold
/// one scratch each; results are bit-identical to the allocating [`simulate`].
#[derive(Debug, Default)]
pub struct SimScratch {
    machine: Option<Machine>,
    replays: Vec<ReplayEntry>,
}

impl SimScratch {
    /// Creates an empty scratch; structures are sized lazily by the first run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the machine for `config` and positions a cursor at the start of
    /// the `(workload, seed)` stream, materializing it on first use.
    fn prepare(
        &mut self,
        config: &CpuConfig,
        workload: Workload,
        seed: u64,
    ) -> (&mut Machine, ReplayCursor<'_>) {
        match &mut self.machine {
            Some(machine) => machine.reset(config),
            None => self.machine = Some(Machine::new(config)),
        }
        let idx = match self
            .replays
            .iter()
            .position(|e| e.workload == workload && e.seed == seed)
        {
            Some(idx) => idx,
            None => {
                if self.replays.len() == MAX_REPLAY_STREAMS {
                    // Evict the oldest stream; correctness never depends on
                    // what is cached, only speed does.
                    self.replays.remove(0);
                }
                self.replays.push(ReplayEntry {
                    workload,
                    seed,
                    generator: StreamGenerator::new(workload, seed),
                    instrs: Vec::new(),
                });
                self.replays.len() - 1
            }
        };
        let machine = self.machine.as_mut().expect("initialized above");
        let cursor = ReplayCursor {
            entry: &mut self.replays[idx],
            pos: 0,
        };
        (machine, cursor)
    }
}

/// Simulates `workload` on `config`.
///
/// The run is fully deterministic in `(config, workload, sim)`.
///
/// Convenience wrapper over [`simulate_with`] with a throwaway [`SimScratch`];
/// hot paths (sweeps, corpus generation) should hold a scratch per worker and
/// call [`simulate_with`] directly.
pub fn simulate(config: &CpuConfig, workload: Workload, sim: &SimConfig) -> SimResult {
    simulate_with(config, workload, sim, &mut SimScratch::new())
}

/// Simulates `workload` on `config`, reusing the allocations in `scratch`.
///
/// Bit-identical to [`simulate`] — the scratch recycles buffers, never state:
/// every structure is reset to its construction values and the replayed
/// instruction stream is the deterministic generator output.
pub fn simulate_with(
    config: &CpuConfig,
    workload: Workload,
    sim: &SimConfig,
    scratch: &mut SimScratch,
) -> SimResult {
    let (machine, mut stream) = scratch.prepare(config, workload, sim.stream_seed);

    let mut intervals = Vec::new();
    let mut last_counters = EventCounters::default();
    let mut last_cycle = 0u64;
    let cycle_cap = sim.max_instructions * 40 + 10_000;

    while machine.counters().committed < sim.max_instructions && machine.cycle() < cycle_cap {
        machine.step(&mut stream);
        if machine.cycle() - last_cycle >= sim.interval_cycles as u64 {
            let delta = machine.counters().delta_since(&last_counters);
            intervals.push(IntervalRecord {
                start_cycle: last_cycle,
                activity: derive_activity(&delta, config),
                counters: delta,
            });
            last_counters = *machine.counters();
            last_cycle = machine.cycle();
        }
    }
    // Flush the final partial interval, if any.
    if machine.cycle() > last_cycle {
        let delta = machine.counters().delta_since(&last_counters);
        intervals.push(IntervalRecord {
            start_cycle: last_cycle,
            activity: derive_activity(&delta, config),
            counters: delta,
        });
    }

    let counters = *machine.counters();
    let events = EventParams::from_counters(&counters, config.id, workload, sim.event_distortion);
    let activity = derive_activity(&counters, config);

    SimResult {
        config: *config,
        workload,
        sim_config: *sim,
        counters,
        events,
        activity,
        intervals,
    }
}

/// Runs the simulation of [`simulate_with`] and returns only the whole-run
/// [`EventCounters`], skipping interval recording and event derivation.
///
/// Interval recording is pure observation — it only reads counter deltas at
/// interval boundaries, never feeding back into the machine — so the counters
/// returned here are bit-identical to `simulate_with(..).counters`. This is
/// the sweep hot path: the engine memoizes these counters in a [`SimCache`]
/// and derives per-configuration [`EventParams`] downstream.
pub fn simulate_counters_with(
    config: &CpuConfig,
    workload: Workload,
    sim: &SimConfig,
    scratch: &mut SimScratch,
) -> EventCounters {
    let (machine, mut stream) = scratch.prepare(config, workload, sim.stream_seed);
    machine.run(&mut stream, sim.max_instructions);
    *machine.counters()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::boom_configs;

    #[test]
    fn simulate_produces_consistent_result() {
        let cfg = boom_configs()[7];
        let r = simulate(&cfg, Workload::Median, &SimConfig::fast());
        assert!(r.counters.committed >= SimConfig::fast().max_instructions);
        assert!(!r.intervals.is_empty());
        // Interval counters sum back to the whole-run counters.
        let total_cycles: u64 = r.intervals.iter().map(|i| i.counters.cycles).sum();
        assert_eq!(total_cycles, r.counters.cycles);
        let total_committed: u64 = r.intervals.iter().map(|i| i.counters.committed).sum();
        assert_eq!(total_committed, r.counters.committed);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = boom_configs()[2];
        let a = simulate(&cfg, Workload::Rsort, &SimConfig::fast());
        let b = simulate(&cfg, Workload::Rsort, &SimConfig::fast());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.events, b.events);
        assert_eq!(a.intervals.len(), b.intervals.len());
    }

    #[test]
    fn interval_length_matches_config() {
        let cfg = boom_configs()[5];
        let sim = SimConfig {
            interval_cycles: 50,
            ..SimConfig::fast()
        };
        let r = simulate(&cfg, Workload::Gemm, &sim);
        // All but the last interval are exactly 50 cycles.
        for i in &r.intervals[..r.intervals.len() - 1] {
            assert_eq!(i.counters.cycles, 50);
        }
    }

    #[test]
    fn distortion_changes_reported_events_only() {
        let cfg = boom_configs()[9];
        let exact = simulate(
            &cfg,
            Workload::Spmv,
            &SimConfig {
                event_distortion: 0.0,
                ..SimConfig::fast()
            },
        );
        let noisy = simulate(
            &cfg,
            Workload::Spmv,
            &SimConfig {
                event_distortion: 0.15,
                ..SimConfig::fast()
            },
        );
        // True counters and activity are identical; only the reported events differ.
        assert_eq!(exact.counters, noisy.counters);
        assert_eq!(exact.activity, noisy.activity);
        assert_ne!(exact.events, noisy.events);
    }

    #[test]
    fn reused_scratch_matches_fresh_simulation() {
        let cfgs = boom_configs();
        let sim = SimConfig {
            max_instructions: 2_000,
            ..SimConfig::fast()
        };
        let mut scratch = SimScratch::new();
        // Interleave configurations and workloads so every run inherits a
        // dirty machine and a warm replay stream from a different run.
        for (i, w) in [
            (7, Workload::Dhrystone),
            (0, Workload::Qsort),
            (14, Workload::Dhrystone),
            (7, Workload::Qsort),
            (7, Workload::Dhrystone),
        ] {
            let reused = simulate_with(&cfgs[i], w, &sim, &mut scratch);
            let fresh = simulate(&cfgs[i], w, &sim);
            assert_eq!(reused.counters, fresh.counters, "config {i} {w:?}");
            assert_eq!(reused.events, fresh.events);
            assert_eq!(reused.activity, fresh.activity);
            assert_eq!(reused.intervals, fresh.intervals);
        }
    }

    #[test]
    fn counters_only_run_matches_full_simulation() {
        let cfg = boom_configs()[9];
        let sim = SimConfig::fast();
        let mut scratch = SimScratch::new();
        let counters = simulate_counters_with(&cfg, Workload::Towers, &sim, &mut scratch);
        let full = simulate(&cfg, Workload::Towers, &sim);
        assert_eq!(counters, full.counters);
    }

    #[test]
    fn replay_streams_are_evicted_beyond_the_cap() {
        let cfg = boom_configs()[3];
        let sim = SimConfig {
            max_instructions: 500,
            ..SimConfig::fast()
        };
        let mut scratch = SimScratch::new();
        // More (workload, seed) pairs than MAX_REPLAY_STREAMS; each run must
        // still match a fresh simulation after the eviction churn.
        for seed in 0..(2 * MAX_REPLAY_STREAMS as u64 + 1) {
            let s = SimConfig {
                stream_seed: seed,
                ..sim
            };
            let reused = simulate_with(&cfg, Workload::Median, &s, &mut scratch);
            let fresh = simulate(&cfg, Workload::Median, &s);
            assert_eq!(reused.counters, fresh.counters, "seed {seed}");
        }
        assert!(scratch.replays.len() <= MAX_REPLAY_STREAMS);
    }

    #[test]
    fn workloads_produce_different_behaviour() {
        let cfg = boom_configs()[7];
        let a = simulate(&cfg, Workload::Vvadd, &SimConfig::fast());
        let b = simulate(&cfg, Workload::Qsort, &SimConfig::fast());
        assert_ne!(a.counters, b.counters);
        assert!(a.events.value("branch_rate") < b.events.value("branch_rate"));
    }
}
