//! Cycle-level out-of-order CPU performance simulator ("gem5 substitute").
//!
//! [`simulate`] executes a synthetic instruction stream for one `(configuration,
//! workload)` pair and returns a [`SimResult`] containing:
//!
//! * the raw, true [`EventCounters`] of the run,
//! * the architecture-level [`EventParams`] — the `E` features of the power models,
//!   optionally distorted to emulate performance-simulator inaccuracy,
//! * the true [`ActivitySnapshot`] consumed by the golden power flow,
//! * per-interval records (default 50 cycles, matching Table IV of the paper) used for
//!   time-based power-trace experiments.
//!
//! # Example
//!
//! ```
//! use autopower_config::{boom_configs, Workload};
//! use autopower_perfsim::{simulate, SimConfig};
//!
//! let cfg = boom_configs()[7];
//! let sim = SimConfig { max_instructions: 3_000, ..SimConfig::default() };
//! let result = simulate(&cfg, Workload::Dhrystone, &sim);
//! assert!(result.ipc() > 0.0);
//! assert!(!result.intervals.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod branch;
mod cache;
mod events;
mod pipeline;
mod tlb;

pub use activity::{
    derive_activity, ActivitySnapshot, ComponentActivity, IntervalRecord, PositionActivity,
};
pub use branch::BranchPredictor;
pub use cache::{AccessOutcome, Cache};
pub use events::{EventCounters, EventParams};
pub use pipeline::Pipeline;
pub use tlb::Tlb;

use autopower_config::{CpuConfig, Workload};
use autopower_workloads::StreamGenerator;
use serde::Serialize;

/// Knobs of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SimConfig {
    /// Number of instructions to commit before stopping.
    pub max_instructions: u64,
    /// Length of one activity interval in cycles (the paper's power-trace step is 50).
    pub interval_cycles: u32,
    /// Relative magnitude of the simulator-inaccuracy distortion applied to the reported
    /// event parameters (0.0 = perfect simulator).
    pub event_distortion: f64,
    /// Seed of the synthetic instruction stream.
    pub stream_seed: u64,
}

impl SimConfig {
    /// Configuration used by the paper-scale experiments (50 k instructions per run).
    pub fn paper() -> Self {
        Self {
            max_instructions: 50_000,
            interval_cycles: 50,
            event_distortion: 0.08,
            stream_seed: 2024,
        }
    }

    /// A small, fast configuration for unit and integration tests.
    pub fn fast() -> Self {
        Self {
            max_instructions: 6_000,
            ..Self::paper()
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Result of simulating one `(configuration, workload)` pair.
#[derive(Debug, Clone, Serialize)]
pub struct SimResult {
    /// The simulated configuration.
    pub config: CpuConfig,
    /// The executed workload.
    pub workload: Workload,
    /// The simulation knobs used.
    pub sim_config: SimConfig,
    /// True counters of the whole run.
    pub counters: EventCounters,
    /// Architecture-level event parameters of the whole run (possibly distorted).
    pub events: EventParams,
    /// True activity of the whole run (golden-flow input).
    pub activity: ActivitySnapshot,
    /// Per-interval records in execution order.
    pub intervals: Vec<IntervalRecord>,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.counters.ipc()
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.counters.cycles
    }

    /// Event parameters of one interval, derived with this run's distortion setting.
    pub fn interval_events(&self, interval: &IntervalRecord) -> EventParams {
        EventParams::from_counters(
            &interval.counters,
            self.config.id,
            self.workload,
            self.sim_config.event_distortion,
        )
    }
}

/// Simulates `workload` on `config`.
///
/// The run is fully deterministic in `(config, workload, sim)`.
pub fn simulate(config: &CpuConfig, workload: Workload, sim: &SimConfig) -> SimResult {
    let stream = StreamGenerator::new(workload, sim.stream_seed);
    let mut pipe = Pipeline::new(*config, stream);

    let mut intervals = Vec::new();
    let mut last_counters = EventCounters::default();
    let mut last_cycle = 0u64;
    let cycle_cap = sim.max_instructions * 40 + 10_000;

    while pipe.counters().committed < sim.max_instructions && pipe.cycle() < cycle_cap {
        pipe.step();
        if pipe.cycle() - last_cycle >= sim.interval_cycles as u64 {
            let delta = pipe.counters().delta_since(&last_counters);
            intervals.push(IntervalRecord {
                start_cycle: last_cycle,
                activity: derive_activity(&delta, config),
                counters: delta,
            });
            last_counters = *pipe.counters();
            last_cycle = pipe.cycle();
        }
    }
    // Flush the final partial interval, if any.
    if pipe.cycle() > last_cycle {
        let delta = pipe.counters().delta_since(&last_counters);
        intervals.push(IntervalRecord {
            start_cycle: last_cycle,
            activity: derive_activity(&delta, config),
            counters: delta,
        });
    }

    let counters = *pipe.counters();
    let events = EventParams::from_counters(&counters, config.id, workload, sim.event_distortion);
    let activity = derive_activity(&counters, config);

    SimResult {
        config: *config,
        workload,
        sim_config: *sim,
        counters,
        events,
        activity,
        intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::boom_configs;

    #[test]
    fn simulate_produces_consistent_result() {
        let cfg = boom_configs()[7];
        let r = simulate(&cfg, Workload::Median, &SimConfig::fast());
        assert!(r.counters.committed >= SimConfig::fast().max_instructions);
        assert!(!r.intervals.is_empty());
        // Interval counters sum back to the whole-run counters.
        let total_cycles: u64 = r.intervals.iter().map(|i| i.counters.cycles).sum();
        assert_eq!(total_cycles, r.counters.cycles);
        let total_committed: u64 = r.intervals.iter().map(|i| i.counters.committed).sum();
        assert_eq!(total_committed, r.counters.committed);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = boom_configs()[2];
        let a = simulate(&cfg, Workload::Rsort, &SimConfig::fast());
        let b = simulate(&cfg, Workload::Rsort, &SimConfig::fast());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.events, b.events);
        assert_eq!(a.intervals.len(), b.intervals.len());
    }

    #[test]
    fn interval_length_matches_config() {
        let cfg = boom_configs()[5];
        let sim = SimConfig {
            interval_cycles: 50,
            ..SimConfig::fast()
        };
        let r = simulate(&cfg, Workload::Gemm, &sim);
        // All but the last interval are exactly 50 cycles.
        for i in &r.intervals[..r.intervals.len() - 1] {
            assert_eq!(i.counters.cycles, 50);
        }
    }

    #[test]
    fn distortion_changes_reported_events_only() {
        let cfg = boom_configs()[9];
        let exact = simulate(
            &cfg,
            Workload::Spmv,
            &SimConfig {
                event_distortion: 0.0,
                ..SimConfig::fast()
            },
        );
        let noisy = simulate(
            &cfg,
            Workload::Spmv,
            &SimConfig {
                event_distortion: 0.15,
                ..SimConfig::fast()
            },
        );
        // True counters and activity are identical; only the reported events differ.
        assert_eq!(exact.counters, noisy.counters);
        assert_eq!(exact.activity, noisy.activity);
        assert_ne!(exact.events, noisy.events);
    }

    #[test]
    fn workloads_produce_different_behaviour() {
        let cfg = boom_configs()[7];
        let a = simulate(&cfg, Workload::Vvadd, &SimConfig::fast());
        let b = simulate(&cfg, Workload::Qsort, &SimConfig::fast());
        assert_ne!(a.counters, b.counters);
        assert!(a.events.value("branch_rate") < b.events.value("branch_rate"));
    }
}
