//! Architecture-level event parameters: the counters an architect would read out of a
//! performance simulator such as gem5.

use autopower_config::{seed, Component, ConfigId, Workload};
use serde::Serialize;

/// Raw event counters accumulated by the pipeline model over a window of cycles.
///
/// These are the *true* counters of the simulated machine; the reported
/// [`EventParams`] may be a distorted view of them (see [`EventParams::from_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct EventCounters {
    /// Cycles elapsed in the window.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Fetch groups (instruction-cache accesses).
    pub fetch_groups: u64,
    /// Instructions decoded / renamed.
    pub decoded: u64,
    /// Micro-ops dispatched into the ROB.
    pub dispatched: u64,
    /// Integer ALU / multiply operations issued.
    pub int_issued: u64,
    /// Floating-point operations issued.
    pub fp_issued: u64,
    /// Memory operations issued.
    pub mem_issued: u64,
    /// Conditional branches fetched.
    pub branches: u64,
    /// Branches mispredicted.
    pub branch_mispredicts: u64,
    /// Instruction-cache accesses.
    pub icache_accesses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache read accesses.
    pub dcache_reads: u64,
    /// Data-cache write accesses.
    pub dcache_writes: u64,
    /// Data-cache misses (reads and writes).
    pub dcache_misses: u64,
    /// Instruction-TLB accesses.
    pub itlb_accesses: u64,
    /// Instruction-TLB misses.
    pub itlb_misses: u64,
    /// Data-TLB accesses.
    pub dtlb_accesses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
    /// Miss-status-holding-register allocations.
    pub mshr_allocations: u64,
    /// Sum over cycles of the ROB occupancy (for averages).
    pub rob_occupancy_sum: u64,
    /// Sum over cycles of the fetch-buffer occupancy.
    pub fetch_buffer_occupancy_sum: u64,
    /// Sum over cycles of the load/store-queue occupancy.
    pub lsq_occupancy_sum: u64,
    /// Cycles the front end could not deliver instructions.
    pub frontend_stall_cycles: u64,
    /// Cycles dispatch was blocked by a full back end.
    pub backend_stall_cycles: u64,
}

impl EventCounters {
    /// Element-wise difference `self - earlier`, used to derive per-interval counters.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not element-wise ≤ `self`.
    pub fn delta_since(&self, earlier: &EventCounters) -> EventCounters {
        macro_rules! sub {
            ($($f:ident),*) => {
                EventCounters { $($f: self.$f - earlier.$f),* }
            };
        }
        sub!(
            cycles,
            committed,
            fetched,
            fetch_groups,
            decoded,
            dispatched,
            int_issued,
            fp_issued,
            mem_issued,
            branches,
            branch_mispredicts,
            icache_accesses,
            icache_misses,
            dcache_reads,
            dcache_writes,
            dcache_misses,
            itlb_accesses,
            itlb_misses,
            dtlb_accesses,
            dtlb_misses,
            mshr_allocations,
            rob_occupancy_sum,
            fetch_buffer_occupancy_sum,
            lsq_occupancy_sum,
            frontend_stall_cycles,
            backend_stall_cycles
        )
    }

    /// Instructions per cycle of the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// Names and values of all event parameters, expressed as per-cycle rates.
///
/// Field order here defines the canonical feature order used by the ML models.
const EVENT_NAMES: [&str; 25] = [
    "ipc",
    "fetch_rate",
    "fetch_group_rate",
    "decode_rate",
    "dispatch_rate",
    "int_issue_rate",
    "fp_issue_rate",
    "mem_issue_rate",
    "branch_rate",
    "branch_mispredict_rate",
    "icache_access_rate",
    "icache_miss_rate",
    "dcache_read_rate",
    "dcache_write_rate",
    "dcache_miss_rate",
    "itlb_access_rate",
    "itlb_miss_rate",
    "dtlb_access_rate",
    "dtlb_miss_rate",
    "mshr_alloc_rate",
    "rob_occupancy",
    "fetch_buffer_occupancy",
    "lsq_occupancy",
    "frontend_stall_fraction",
    "backend_stall_fraction",
];

/// Architecture-level event parameters: the `E` input of the power models.
///
/// All values are per-cycle rates (or average occupancies), which makes them comparable
/// across windows of different lengths.  They may include a systematic
/// configuration-and-workload-dependent distortion that emulates performance-simulator
/// inaccuracy (the paper identifies gem5 inaccuracy as a root cause of ML power-model
/// error); the golden power flow never uses the distorted values.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EventParams {
    values: Vec<f64>,
}

impl EventParams {
    /// Derives event parameters from raw counters.
    ///
    /// `distortion` is the relative magnitude of the simulator-inaccuracy perturbation
    /// (0.0 means a perfect simulator); the perturbation is deterministic in
    /// `(config, workload, event name)` so it behaves like a systematic modelling error,
    /// not like random noise that would average out.
    pub fn from_counters(
        counters: &EventCounters,
        config: ConfigId,
        workload: Workload,
        distortion: f64,
    ) -> Self {
        let mut out = Self {
            values: Vec::with_capacity(EVENT_NAMES.len()),
        };
        Self::from_counters_into(counters, config, workload, distortion, &mut out);
        out
    }

    /// Derives event parameters from raw counters into an existing parameter
    /// set, reusing its allocation (the allocation-free twin of
    /// [`EventParams::from_counters`], used by the sweep hot path where one
    /// reusable `EventParams` per worker absorbs thousands of derivations).
    pub fn from_counters_into(
        counters: &EventCounters,
        config: ConfigId,
        workload: Workload,
        distortion: f64,
        out: &mut Self,
    ) {
        Self::from_raw_rates_into(
            &Self::raw_rates(counters),
            config,
            workload,
            distortion,
            out,
        );
    }

    /// The undistorted per-cycle rates of `counters`, in canonical
    /// [`EventParams::names`] order.
    ///
    /// These are the surrogate's regression targets: a learned model predicts
    /// the *raw* rates, and [`EventParams::from_raw_rates_into`] re-applies
    /// the same deterministic simulator-inaccuracy distortion the exact path
    /// applies, so a perfect surrogate reproduces the exact pipeline's
    /// [`EventParams`] bit for bit.
    pub fn raw_rates(counters: &EventCounters) -> [f64; EVENT_NAMES.len()] {
        let c = counters;
        let cyc = c.cycles.max(1) as f64;
        [
            c.committed as f64 / cyc,
            c.fetched as f64 / cyc,
            c.fetch_groups as f64 / cyc,
            c.decoded as f64 / cyc,
            c.dispatched as f64 / cyc,
            c.int_issued as f64 / cyc,
            c.fp_issued as f64 / cyc,
            c.mem_issued as f64 / cyc,
            c.branches as f64 / cyc,
            c.branch_mispredicts as f64 / cyc,
            c.icache_accesses as f64 / cyc,
            c.icache_misses as f64 / cyc,
            c.dcache_reads as f64 / cyc,
            c.dcache_writes as f64 / cyc,
            c.dcache_misses as f64 / cyc,
            c.itlb_accesses as f64 / cyc,
            c.itlb_misses as f64 / cyc,
            c.dtlb_accesses as f64 / cyc,
            c.dtlb_misses as f64 / cyc,
            c.mshr_allocations as f64 / cyc,
            c.rob_occupancy_sum as f64 / cyc,
            c.fetch_buffer_occupancy_sum as f64 / cyc,
            c.lsq_occupancy_sum as f64 / cyc,
            c.frontend_stall_cycles as f64 / cyc,
            c.backend_stall_cycles as f64 / cyc,
        ]
    }

    /// Builds event parameters from raw (undistorted) per-cycle rates,
    /// applying the same deterministic `(config, workload, event name)`
    /// distortion as [`EventParams::from_counters_into`].
    ///
    /// The distortion factor never depends on the counters themselves, so
    /// surrogate-predicted rates pass through the identical perturbation the
    /// exact simulation path would apply to that configuration.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not hold one value per [`EventParams::names`]
    /// entry.
    pub fn from_raw_rates_into(
        raw: &[f64],
        config: ConfigId,
        workload: Workload,
        distortion: f64,
        out: &mut Self,
    ) {
        assert_eq!(
            raw.len(),
            EVENT_NAMES.len(),
            "raw rates must hold one value per event parameter"
        );
        out.values.clear();
        out.values
            .extend(raw.iter().zip(EVENT_NAMES.iter()).map(|(&v, name)| {
                if distortion <= 0.0 {
                    v
                } else {
                    let s = seed::combine(
                        seed::hash_str(name),
                        seed::combine(seed::hash_str(workload.name()), config.index() as u64),
                    );
                    v * seed::lognormal_factor(s, distortion)
                }
            }));
    }

    /// Creates a parameter set with no values yet, to be filled by
    /// [`EventParams::from_counters_into`].
    ///
    /// Only useful as the initial value of a reused scratch parameter set (it
    /// holds no parameters until the first refill); sweep workers seed their
    /// per-worker scratch with it.
    pub fn empty() -> Self {
        Self { values: Vec::new() }
    }

    /// Names of all event parameters in canonical order.
    pub fn names() -> &'static [&'static str] {
        &EVENT_NAMES
    }

    /// All values in canonical order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of one named event parameter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of [`EventParams::names`].
    pub fn value(&self, name: &str) -> f64 {
        let idx = EVENT_NAMES
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown event parameter {name}"));
        self.values[idx]
    }

    /// The subset of event parameters relevant to one component (its `E` features).
    pub fn component_features(&self, component: Component) -> Vec<f64> {
        let mut out = Vec::new();
        self.component_features_into(component, &mut out);
        out
    }

    /// Appends the component's `E` features to `out` (the allocation-free
    /// twin of [`EventParams::component_features`], used by the batch
    /// inference hot path).
    pub fn component_features_into(&self, component: Component, out: &mut Vec<f64>) {
        out.extend(
            Self::component_feature_indices(component)
                .iter()
                .map(|&i| self.values[i]),
        );
    }

    /// Positions of the component's feature names within [`EventParams::names`],
    /// resolved once instead of by per-call linear name search.
    fn component_feature_indices(component: Component) -> &'static [usize] {
        static INDICES: std::sync::OnceLock<Vec<Vec<usize>>> = std::sync::OnceLock::new();
        let per_component = INDICES.get_or_init(|| {
            Component::ALL
                .iter()
                .map(|&c| {
                    Self::component_feature_names(c)
                        .iter()
                        .map(|name| {
                            EVENT_NAMES
                                .iter()
                                .position(|n| n == name)
                                .unwrap_or_else(|| panic!("unknown event parameter {name}"))
                        })
                        .collect()
                })
                .collect()
        });
        &per_component[component.index()]
    }

    /// Names of the event parameters used as features for one component.
    pub fn component_feature_names(component: Component) -> &'static [&'static str] {
        match component {
            Component::BpTage | Component::BpBtb | Component::BpOthers => &[
                "fetch_group_rate",
                "branch_rate",
                "branch_mispredict_rate",
                "frontend_stall_fraction",
            ],
            Component::ICacheTagArray | Component::ICacheDataArray | Component::ICacheOthers => &[
                "fetch_group_rate",
                "icache_access_rate",
                "icache_miss_rate",
                "frontend_stall_fraction",
            ],
            Component::Rnu => &["decode_rate", "dispatch_rate", "ipc"],
            Component::Rob => &[
                "dispatch_rate",
                "ipc",
                "rob_occupancy",
                "backend_stall_fraction",
            ],
            Component::Regfile => &["int_issue_rate", "fp_issue_rate", "mem_issue_rate", "ipc"],
            Component::DCacheTagArray | Component::DCacheDataArray | Component::DCacheOthers => &[
                "dcache_read_rate",
                "dcache_write_rate",
                "dcache_miss_rate",
                "mem_issue_rate",
            ],
            Component::FpIsu => &["fp_issue_rate", "dispatch_rate", "backend_stall_fraction"],
            Component::IntIsu => &["int_issue_rate", "dispatch_rate", "backend_stall_fraction"],
            Component::MemIsu => &["mem_issue_rate", "dispatch_rate", "backend_stall_fraction"],
            Component::ITlb => &["itlb_access_rate", "itlb_miss_rate", "fetch_group_rate"],
            Component::DTlb => &["dtlb_access_rate", "dtlb_miss_rate", "mem_issue_rate"],
            Component::FuPool => &["int_issue_rate", "fp_issue_rate", "mem_issue_rate", "ipc"],
            Component::OtherLogic => &[
                "ipc",
                "dispatch_rate",
                "frontend_stall_fraction",
                "backend_stall_fraction",
            ],
            Component::DCacheMshr => &["dcache_miss_rate", "mshr_alloc_rate", "mem_issue_rate"],
            Component::Lsu => &[
                "mem_issue_rate",
                "dcache_read_rate",
                "dcache_write_rate",
                "lsq_occupancy",
            ],
            Component::Ifu => &[
                "fetch_rate",
                "fetch_group_rate",
                "decode_rate",
                "fetch_buffer_occupancy",
                "branch_mispredict_rate",
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::ConfigId;

    fn sample_counters() -> EventCounters {
        EventCounters {
            cycles: 1000,
            committed: 800,
            fetched: 1500,
            fetch_groups: 400,
            decoded: 900,
            dispatched: 900,
            int_issued: 400,
            fp_issued: 100,
            mem_issued: 300,
            branches: 150,
            branch_mispredicts: 20,
            icache_accesses: 400,
            icache_misses: 10,
            dcache_reads: 200,
            dcache_writes: 100,
            dcache_misses: 15,
            itlb_accesses: 400,
            itlb_misses: 2,
            dtlb_accesses: 300,
            dtlb_misses: 5,
            mshr_allocations: 15,
            rob_occupancy_sum: 40_000,
            fetch_buffer_occupancy_sum: 8_000,
            lsq_occupancy_sum: 10_000,
            frontend_stall_cycles: 120,
            backend_stall_cycles: 200,
        }
    }

    #[test]
    fn names_and_values_align() {
        let p =
            EventParams::from_counters(&sample_counters(), ConfigId::new(3), Workload::Qsort, 0.0);
        assert_eq!(p.values().len(), EventParams::names().len());
        assert!((p.value("ipc") - 0.8).abs() < 1e-12);
        assert!((p.value("rob_occupancy") - 40.0).abs() < 1e-12);
    }

    #[test]
    fn into_twin_overwrites_reused_parameter_set() {
        let c = sample_counters();
        let fresh = EventParams::from_counters(&c, ConfigId::new(3), Workload::Qsort, 0.08);
        // Seed the reused set with different values (another config, workload
        // and distortion); the refill must fully overwrite them.
        let mut reused = EventParams::from_counters(&c, ConfigId::new(9), Workload::Spmv, 0.3);
        EventParams::from_counters_into(&c, ConfigId::new(3), Workload::Qsort, 0.08, &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn zero_distortion_is_exact_and_nonzero_is_systematic() {
        let c = sample_counters();
        let exact = EventParams::from_counters(&c, ConfigId::new(2), Workload::Spmv, 0.0);
        let d1 = EventParams::from_counters(&c, ConfigId::new(2), Workload::Spmv, 0.1);
        let d2 = EventParams::from_counters(&c, ConfigId::new(2), Workload::Spmv, 0.1);
        assert_eq!(d1, d2, "distortion must be deterministic");
        assert_ne!(exact, d1);
        // Distortion is bounded: within ~40% for sigma=0.1.
        for (a, b) in exact.values().iter().zip(d1.values()) {
            if *a > 0.0 {
                assert!((b / a - 1.0).abs() < 0.4);
            }
        }
    }

    #[test]
    fn raw_rates_roundtrip_through_from_raw_rates() {
        let c = sample_counters();
        let raw = EventParams::raw_rates(&c);
        assert_eq!(raw.len(), EventParams::names().len());
        for distortion in [0.0, 0.08] {
            let direct =
                EventParams::from_counters(&c, ConfigId::new(7), Workload::Towers, distortion);
            let mut rebuilt = EventParams::empty();
            EventParams::from_raw_rates_into(
                &raw,
                ConfigId::new(7),
                Workload::Towers,
                distortion,
                &mut rebuilt,
            );
            assert_eq!(direct, rebuilt, "distortion {distortion} diverged");
        }
    }

    #[test]
    fn delta_since_subtracts_fieldwise() {
        let a = sample_counters();
        let mut b = a;
        b.cycles += 50;
        b.committed += 40;
        b.dcache_misses += 3;
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 50);
        assert_eq!(d.committed, 40);
        assert_eq!(d.dcache_misses, 3);
        assert_eq!(d.fetched, 0);
    }

    #[test]
    fn every_component_has_event_features() {
        let p =
            EventParams::from_counters(&sample_counters(), ConfigId::new(1), Workload::Vvadd, 0.0);
        for c in Component::ALL {
            let f = p.component_features(c);
            assert!(!f.is_empty());
            assert_eq!(f.len(), EventParams::component_feature_names(c).len());
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    #[should_panic(expected = "unknown event parameter")]
    fn unknown_event_name_panics() {
        let p =
            EventParams::from_counters(&sample_counters(), ConfigId::new(1), Workload::Vvadd, 0.0);
        let _ = p.value("no_such_event");
    }
}
