//! Property tests pinning the allocation-free simulation entry points to the
//! allocating reference: `simulate_with` over a dirty, reused [`SimScratch`]
//! and the counters-only `simulate_counters_with` must be bit-identical to a
//! fresh `simulate` for every configuration, workload and knob setting.

use autopower_config::{DesignSpace, Workload};
use autopower_perfsim::{simulate, simulate_counters_with, simulate_with, SimConfig, SimScratch};
use proptest::prelude::*;

/// The benchmark workloads exercised by the sweep and corpus flows.
const WORKLOADS: [Workload; 5] = [
    Workload::Dhrystone,
    Workload::Qsort,
    Workload::Vvadd,
    Workload::Spmv,
    Workload::Towers,
];

proptest! {
    /// A scratch dirtied by one run produces bit-identical results on the
    /// next, across random configurations, workloads, seeds and budgets.
    #[test]
    fn reused_scratch_is_bit_identical_to_fresh_simulation(
        space_seed in 0u64..10_000,
        wl_a in 0usize..WORKLOADS.len(),
        wl_b in 0usize..WORKLOADS.len(),
        stream_seed in 0u64..1_000,
        budget in 300u64..3_000,
    ) {
        let configs = DesignSpace::boom().sample(2, space_seed);
        let sim = SimConfig {
            max_instructions: budget,
            stream_seed,
            ..SimConfig::fast()
        };
        let mut scratch = SimScratch::new();
        // First run dirties the machine and warms the replay stream.
        let _ = simulate_with(&configs[0], WORKLOADS[wl_a], &sim, &mut scratch);
        let reused = simulate_with(&configs[1], WORKLOADS[wl_b], &sim, &mut scratch);
        let fresh = simulate(&configs[1], WORKLOADS[wl_b], &sim);
        prop_assert_eq!(reused.counters, fresh.counters);
        prop_assert_eq!(&reused.events, &fresh.events);
        prop_assert_eq!(&reused.activity, &fresh.activity);
        prop_assert_eq!(&reused.intervals, &fresh.intervals);
    }

    /// The counters-only hot path (no interval recording) returns exactly the
    /// counters of the full-fidelity run.
    #[test]
    fn counters_only_path_matches_full_fidelity(
        space_seed in 0u64..10_000,
        wl in 0usize..WORKLOADS.len(),
        budget in 300u64..3_000,
        interval_cycles in 10u32..200,
    ) {
        let configs = DesignSpace::boom().sample(1, space_seed);
        let sim = SimConfig {
            max_instructions: budget,
            interval_cycles,
            ..SimConfig::fast()
        };
        let mut scratch = SimScratch::new();
        let counters = simulate_counters_with(&configs[0], WORKLOADS[wl], &sim, &mut scratch);
        let full = simulate(&configs[0], WORKLOADS[wl], &sim);
        prop_assert_eq!(counters, full.counters);
    }
}
