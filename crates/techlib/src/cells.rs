//! Standard-cell parameters of the synthetic library.

use serde::{Deserialize, Serialize};

/// Per-cell power/energy figures of the standard-cell library.
///
/// The clock power model of the paper (Eq. 7) looks `p_reg` up "from the library file of
/// the technology node adopted for the VLSI flow"; the other figures are used by the
/// golden power evaluator (the PrimePower substitute) and by nothing else — the
/// architecture-level model never sees them directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Clock-pin power of one register whose clock is active every cycle, in mW
    /// (`p_reg` of Eq. 2).
    pub register_clock_pin_mw: f64,
    /// Clock-pin power of the latch inside one integrated clock-gating cell, in mW
    /// (`p_latch` of Eq. 4).
    pub gating_cell_latch_mw: f64,
    /// Internal + switching energy of one register data toggle (excluding the clock pin),
    /// in pJ.
    pub register_toggle_pj: f64,
    /// Leakage power of one register, in mW.
    pub register_leakage_mw: f64,
    /// Dynamic power of one gate-equivalent of combinational logic at 100 % input
    /// activity, in mW.
    pub comb_dynamic_mw_per_gate: f64,
    /// Leakage power of one gate-equivalent of combinational logic, in mW.
    pub comb_leakage_mw_per_gate: f64,
    /// Average fan-out of an integrated clock-gating cell: how many gated registers share
    /// one gating cell.  The ratio `r` between gating cells and registers of Eq. 4 is the
    /// reciprocal of this figure.
    pub gating_cell_fanout: f64,
}

impl CellParams {
    /// Representative values for a 40 nm-class node at 1 GHz / 0.9 V.
    pub fn default_40nm() -> Self {
        Self {
            // ~2.4 uW per always-on flop clock pin at 1 GHz (clock pin + local clock net).
            register_clock_pin_mw: 2.4e-3,
            // The gating-cell latch clock pin is slightly larger than a flop clock pin.
            gating_cell_latch_mw: 3.1e-3,
            // A full flop data toggle costs a few fJ; 2.2 fJ internal + local net.
            register_toggle_pj: 2.2e-3,
            register_leakage_mw: 2.0e-5,
            comb_dynamic_mw_per_gate: 4.5e-4,
            comb_leakage_mw_per_gate: 6.0e-6,
            gating_cell_fanout: 18.0,
        }
    }

    /// The ratio `r` between clock-gating cells and gated registers (Eq. 4), i.e.
    /// `1 / gating_cell_fanout`.
    pub fn gating_cell_ratio(&self) -> f64 {
        1.0 / self.gating_cell_fanout
    }

    /// Checks that every figure is finite and positive.
    ///
    /// Returns `false` for a physically meaningless parameter set; callers that accept
    /// user-provided libraries should reject such sets.
    pub fn is_physical(&self) -> bool {
        [
            self.register_clock_pin_mw,
            self.gating_cell_latch_mw,
            self.register_toggle_pj,
            self.register_leakage_mw,
            self.comb_dynamic_mw_per_gate,
            self.comb_leakage_mw_per_gate,
            self.gating_cell_fanout,
        ]
        .iter()
        .all(|v| v.is_finite() && *v > 0.0)
    }
}

impl Default for CellParams {
    fn default() -> Self {
        Self::default_40nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cells_are_physical() {
        assert!(CellParams::default_40nm().is_physical());
    }

    #[test]
    fn gating_latch_costs_more_than_flop_clock_pin() {
        // The paper's Eq. 4/5 only makes sense if a gating cell has a non-trivial cost
        // relative to a register clock pin; keep the library in that regime.
        let c = CellParams::default_40nm();
        assert!(c.gating_cell_latch_mw > c.register_clock_pin_mw);
        assert!(c.gating_cell_latch_mw < 10.0 * c.register_clock_pin_mw);
    }

    #[test]
    fn gating_ratio_is_reciprocal_of_fanout() {
        let c = CellParams::default_40nm();
        let r = c.gating_cell_ratio();
        assert!((r * c.gating_cell_fanout - 1.0).abs() < 1e-12);
        assert!(r < 1.0);
    }

    #[test]
    fn non_physical_detected() {
        let mut c = CellParams::default_40nm();
        c.register_clock_pin_mw = 0.0;
        assert!(!c.is_physical());
        c.register_clock_pin_mw = f64::NAN;
        assert!(!c.is_physical());
    }
}
