//! Synthetic 40 nm-class technology library.
//!
//! The AutoPower paper evaluates on a TSMC 40 nm standard-cell library plus its memory
//! compiler.  Those artefacts are proprietary, so this crate provides a synthetic stand-in
//! with the same *interface* and the same *relative* behaviour:
//!
//! * [`CellParams`] — per-cell energies/powers of the standard-cell library that the
//!   power model looks up directly: register clock-pin power `p_reg`, the clock-gating
//!   cell latch-pin power `p_latch`, register internal switching energy, combinational
//!   dynamic/leakage power densities.
//! * [`SramCompiler`] — the memory-compiler view: a discrete catalogue of supported
//!   [`SramMacro`] shapes with read/write energies and leakage, and the VLSI-flow
//!   [`SramCompiler::map_block`] rule that decomposes an arbitrary SRAM Block shape into
//!   a grid of supported macros (this is the "macro-level mapping" input of Section II-B).
//! * [`TechLibrary`] — the bundle of both, created by [`TechLibrary::tsmc40_like`].
//!
//! All powers are in **milliwatts at the nominal 1 GHz clock**; all energies are in
//! **picojoules**, so `power_mw = energy_pj × accesses_per_cycle` at 1 GHz.
//!
//! # Example
//!
//! ```
//! use autopower_techlib::TechLibrary;
//!
//! let lib = TechLibrary::tsmc40_like();
//! // Clock-pin power per register, looked up from the library (Eq. 7 of the paper).
//! assert!(lib.cells().register_clock_pin_mw > 0.0);
//! // Map a 30x320-bit SRAM block onto supported macros.
//! let mapping = lib.sram().map_block(30, 320);
//! assert!(mapping.total_bits() >= 30 * 320);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod sram;

pub use cells::CellParams;
pub use sram::{BlockMapping, SramCompiler, SramMacro};

use serde::{Deserialize, Serialize};

/// A bundle of standard-cell parameters and the memory compiler for one technology node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechLibrary {
    /// Short name of the node (e.g. `"synthetic-40nm"`).
    pub node: String,
    /// Nominal clock frequency in GHz; all `*_mw` figures assume this frequency.
    pub clock_ghz: f64,
    cells: CellParams,
    sram: SramCompiler,
}

impl TechLibrary {
    /// Builds the default synthetic 40 nm-class library used throughout the reproduction.
    ///
    /// The absolute values are representative of a 40 nm node at 1 GHz and 0.9 V; only
    /// their relative magnitudes matter for the experiments (clock + SRAM dominance,
    /// SRAM access energy ≫ register toggle energy, etc.).
    pub fn tsmc40_like() -> Self {
        Self {
            node: "synthetic-40nm".to_owned(),
            clock_ghz: 1.0,
            cells: CellParams::default_40nm(),
            sram: SramCompiler::default_40nm(),
        }
    }

    /// Standard-cell parameters of the library.
    pub fn cells(&self) -> &CellParams {
        &self.cells
    }

    /// Memory-compiler view of the library.
    pub fn sram(&self) -> &SramCompiler {
        &self.sram
    }

    /// Creates a library with custom parts (useful for sensitivity studies and tests).
    ///
    /// # Panics
    ///
    /// Panics if `clock_ghz` is not strictly positive.
    pub fn with_parts(
        node: impl Into<String>,
        clock_ghz: f64,
        cells: CellParams,
        sram: SramCompiler,
    ) -> Self {
        assert!(clock_ghz > 0.0, "clock frequency must be positive");
        Self {
            node: node.into(),
            clock_ghz,
            cells,
            sram,
        }
    }
}

impl Default for TechLibrary {
    fn default() -> Self {
        Self::tsmc40_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_is_consistent() {
        let lib = TechLibrary::default();
        assert_eq!(lib.node, "synthetic-40nm");
        assert!(lib.clock_ghz > 0.0);
        assert!(lib.cells().register_clock_pin_mw > 0.0);
        assert!(!lib.sram().supported_macros().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rejected() {
        let lib = TechLibrary::tsmc40_like();
        let _ = TechLibrary::with_parts("x", 0.0, lib.cells().clone(), lib.sram().clone());
    }
}
