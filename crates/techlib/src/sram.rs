//! The memory-compiler view: supported SRAM macros and the block-to-macro mapping rule.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One SRAM macro shape supported by the memory compiler, with its energy figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    /// Word width in bits.
    pub width: u32,
    /// Number of words.
    pub depth: u32,
    /// Energy of one read access, in pJ.
    pub read_energy_pj: f64,
    /// Energy of one write access, in pJ.
    pub write_energy_pj: f64,
    /// Leakage power, in mW.
    pub leakage_mw: f64,
    /// Relative area in arbitrary units (used only to pick the best-fit macro).
    pub area: f64,
}

impl SramMacro {
    /// Capacity of the macro in bits.
    pub fn bits(&self) -> u64 {
        self.width as u64 * self.depth as u64
    }
}

impl fmt::Display for SramMacro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sram_{}x{}", self.width, self.depth)
    }
}

/// How one SRAM Block is built from supported SRAM Macros (the result of the VLSI-flow
/// mapping rule, Fig. 3(b) of the paper).
///
/// The block is tiled as a grid of identical macros: `rows` macros side-by-side cover the
/// block width and `cols` macros stacked on top of each other cover the block depth.
/// `cols` is the `N_col` of Eq. 9 — a block read activates exactly one horizontal row of
/// macros, so each macro sees `1 / cols` of the block's read (and write) traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockMapping {
    /// The selected macro shape.
    pub macro_spec: SramMacro,
    /// Number of macros side-by-side covering the block width.
    pub rows: u32,
    /// Number of macros stacked to cover the block depth (`N_col` of Eq. 9).
    pub cols: u32,
}

impl BlockMapping {
    /// Total number of macro instances.
    pub fn macro_count(&self) -> u32 {
        self.rows * self.cols
    }

    /// Total capacity of the mapping in bits (≥ the block capacity).
    pub fn total_bits(&self) -> u64 {
        self.macro_spec.bits() * self.macro_count() as u64
    }

    /// Number of macros stacked in the depth direction (`N_col` of Eq. 9).
    pub fn n_col(&self) -> u32 {
        self.cols
    }
}

/// The memory compiler: a discrete catalogue of supported macros plus the deterministic
/// mapping rule used by the VLSI flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramCompiler {
    macros: Vec<SramMacro>,
}

impl SramCompiler {
    /// Builds the default 40 nm-class macro catalogue.
    ///
    /// Widths and depths follow the usual power-of-two grid a single-port compiler
    /// offers; energies follow a `E ≈ a + b·width·sqrt(depth)` trend which captures the
    /// first-order physics (bitline energy grows with width, wordline/sensing with the
    /// square root of depth).
    pub fn default_40nm() -> Self {
        let widths = [8u32, 16, 32, 40, 64, 80, 128];
        let depths = [64u32, 128, 256, 512, 1024, 2048];
        let mut macros = Vec::with_capacity(widths.len() * depths.len());
        for &w in &widths {
            for &d in &depths {
                macros.push(Self::synth_macro(w, d));
            }
        }
        Self { macros }
    }

    fn synth_macro(width: u32, depth: u32) -> SramMacro {
        let w = width as f64;
        let d = depth as f64;
        let read_energy_pj = 0.7 + 0.008 * w * (d / 64.0).sqrt();
        let write_energy_pj = 1.12 * read_energy_pj + 0.15;
        let leakage_mw = 2.4e-6 * w * d;
        let area = w * d + 220.0 * (w + d.sqrt());
        SramMacro {
            width,
            depth,
            read_energy_pj,
            write_energy_pj,
            leakage_mw,
            area,
        }
    }

    /// Builds a compiler from an explicit macro list (useful for tests and studies).
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or contains a macro with zero width or depth.
    pub fn from_macros(macros: Vec<SramMacro>) -> Self {
        assert!(!macros.is_empty(), "macro catalogue must not be empty");
        assert!(
            macros.iter().all(|m| m.width > 0 && m.depth > 0),
            "macros must have positive width and depth"
        );
        Self { macros }
    }

    /// The supported macro shapes.
    pub fn supported_macros(&self) -> &[SramMacro] {
        &self.macros
    }

    /// Maps one SRAM Block of shape `width × depth` (bits × words) onto supported macros.
    ///
    /// The rule is the usual automatic one of a VLSI flow: every supported macro is tried
    /// as the tile, the grid `ceil(width/mw) × ceil(depth/md)` is computed, and the
    /// candidate with the smallest total area is chosen (ties broken by fewer macro
    /// instances, then by the smaller macro).  The rule is deterministic and identical for
    /// every processor implemented with this flow, which is exactly the property the
    /// paper's macro-level mapping relies on.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn map_block(&self, width: u32, depth: u32) -> BlockMapping {
        assert!(width > 0 && depth > 0, "block shape must be positive");
        let mut best: Option<(f64, u32, BlockMapping)> = None;
        for &m in &self.macros {
            let rows = width.div_ceil(m.width);
            let cols = depth.div_ceil(m.depth);
            let count = rows * cols;
            let total_area = m.area * count as f64;
            let candidate = BlockMapping {
                macro_spec: m,
                rows,
                cols,
            };
            let better = match &best {
                None => true,
                Some((area, cnt, b)) => {
                    total_area < *area - 1e-9
                        || ((total_area - *area).abs() <= 1e-9
                            && (count < *cnt || (count == *cnt && m.bits() < b.macro_spec.bits())))
                }
            };
            if better {
                best = Some((total_area, count, candidate));
            }
        }
        best.expect("catalogue is non-empty").2
    }

    /// Leakage power of the whole catalogue entry grid for a mapped block, in mW.
    pub fn mapping_leakage_mw(&self, mapping: &BlockMapping) -> f64 {
        mapping.macro_spec.leakage_mw * mapping.macro_count() as f64
    }
}

impl Default for SramCompiler {
    fn default() -> Self {
        Self::default_40nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn catalogue_is_reasonably_sized() {
        let c = SramCompiler::default_40nm();
        assert_eq!(c.supported_macros().len(), 7 * 6);
    }

    #[test]
    fn energies_grow_with_size() {
        let c = SramCompiler::default_40nm();
        let small = c.map_block(8, 64).macro_spec;
        let large = c.map_block(128, 2048).macro_spec;
        assert!(large.read_energy_pj > small.read_energy_pj);
        assert!(large.write_energy_pj > large.read_energy_pj);
    }

    #[test]
    fn exact_fit_maps_to_single_macro() {
        let c = SramCompiler::default_40nm();
        let m = c.map_block(64, 512);
        assert_eq!(m.macro_count(), 1);
        assert_eq!(m.macro_spec.width, 64);
        assert_eq!(m.macro_spec.depth, 512);
    }

    #[test]
    fn paper_table_i_example_shape_is_coverable() {
        // Table I: the IFU metadata table of C15 uses blocks of width 40, depth 240.
        let c = SramCompiler::default_40nm();
        let m = c.map_block(40, 240);
        assert!(m.total_bits() >= 40 * 240);
        // Must stack at least one macro in depth; that stack count is N_col of Eq. 9.
        assert!(m.n_col() >= 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_rejected() {
        let _ = SramCompiler::default_40nm().map_block(0, 16);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_catalogue_rejected() {
        let _ = SramCompiler::from_macros(Vec::new());
    }

    #[test]
    fn mapping_is_deterministic() {
        let c = SramCompiler::default_40nm();
        assert_eq!(c.map_block(30, 320), c.map_block(30, 320));
    }

    proptest! {
        /// The mapping always covers the requested block capacity and never uses an
        /// absurdly larger one (bounded waste).
        #[test]
        fn mapping_covers_block(width in 1u32..200, depth in 1u32..4096) {
            let c = SramCompiler::default_40nm();
            let m = c.map_block(width, depth);
            prop_assert!(m.total_bits() >= width as u64 * depth as u64);
            prop_assert!(m.rows as u64 * m.macro_spec.width as u64 >= width as u64);
            prop_assert!(m.cols as u64 * m.macro_spec.depth as u64 >= depth as u64);
            // The chosen grid never over-provisions by more than the largest macro in
            // each dimension.
            prop_assert!((m.rows - 1) as u64 * m.macro_spec.width as u64 <= width as u64);
            prop_assert!((m.cols - 1) as u64 * m.macro_spec.depth as u64 <= depth as u64);
        }

        /// Leakage scales with the macro count.
        #[test]
        fn leakage_is_positive(width in 1u32..200, depth in 1u32..4096) {
            let c = SramCompiler::default_40nm();
            let m = c.map_block(width, depth);
            prop_assert!(c.mapping_leakage_mw(&m) > 0.0);
        }
    }
}
