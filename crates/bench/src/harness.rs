//! A minimal `std::time` benchmark harness for `harness = false` bench targets.
//!
//! Offline stand-in for Criterion: each measurement warms up once, auto-scales
//! the iteration count towards a ~200 ms batch, runs up to three batches and
//! reports the best per-iteration time (the best batch is the least noisy
//! estimate on a busy machine).  No statistics beyond that — the goal is
//! stable, comparable numbers with zero external dependencies.
//!
//! # Machine-readable output
//!
//! Passing `--json FILE` on the bench command line (e.g.
//! `cargo bench --bench models -- --json bench.json`) makes
//! [`Bench::finish`] additionally write every measurement as a JSON document
//! of `{"name", "ns_per_iter", "iters"}` records — the format the repo's
//! committed `BENCH_models.json` baseline and the CI bench artifact use.

use std::cell::RefCell;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Target wall-clock length of one measured batch.
const TARGET_BATCH: Duration = Duration::from_millis(200);
/// Batches per measurement (fewer when a single iteration is already slow).
const BATCHES: u32 = 3;

/// One recorded measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// The bench name as printed.
    pub name: String,
    /// Best per-iteration time, in nanoseconds.
    pub ns_per_iter: f64,
    /// Iterations per measured batch.
    pub iters: u64,
}

/// A bench runner: owns the name filter and the optional `--json FILE` sink
/// passed on the command line.
///
/// `cargo bench <filter>` measures only benches whose name contains `filter`;
/// the `--bench` flag cargo forwards is ignored.
pub struct Bench {
    filter: Option<String>,
    json_path: Option<PathBuf>,
    results: RefCell<Vec<BenchResult>>,
}

impl Bench {
    /// Creates a runner from `std::env::args`.
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut json_path = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--json" {
                json_path = args.next().map(PathBuf::from);
            } else if let Some(path) = arg.strip_prefix("--json=") {
                json_path = Some(PathBuf::from(path));
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Self {
            filter,
            json_path,
            results: RefCell::new(Vec::new()),
        }
    }

    /// Creates a runner that measures everything (tests / direct calls).
    pub fn unfiltered() -> Self {
        Self {
            filter: None,
            json_path: None,
            results: RefCell::new(Vec::new()),
        }
    }

    /// Whether a bench with this name passes the command-line filter.
    pub fn should_run(&self, name: &str) -> bool {
        self.filter
            .as_ref()
            .is_none_or(|filter| name.contains(filter.as_str()))
    }

    /// Measures `f`, prints one report line, and returns the best
    /// per-iteration time (`None` when filtered out).
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Option<Duration> {
        if !self.should_run(name) {
            return None;
        }

        // Warm-up: one untimed-ish call that also calibrates the batch size.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let iters = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        let batches = if once > TARGET_BATCH { 1 } else { BATCHES };

        let mut best = Duration::MAX;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            best = best.min(start.elapsed() / iters);
        }

        println!(
            "{name:<44} {:>12}/iter   ({batches} x {iters} iters)",
            format_duration(best)
        );
        self.record(name, best, u64::from(iters));
        Some(best)
    }

    /// Records an externally timed measurement (for benches with bespoke
    /// timing loops, e.g. the sweep throughput bench) so it lands in the
    /// `--json` output alongside [`Bench::bench`] measurements.
    pub fn record(&self, name: &str, per_iter: Duration, iters: u64) {
        self.results.borrow_mut().push(BenchResult {
            name: name.to_owned(),
            ns_per_iter: per_iter.as_nanos() as f64,
            iters,
        });
    }

    /// The measurements recorded so far, in run order.
    pub fn results(&self) -> Vec<BenchResult> {
        self.results.borrow().clone()
    }

    /// Writes the `--json FILE` report, if one was requested.
    ///
    /// Call once at the end of a bench `main`.  Without `--json` this is a
    /// no-op, so every bench can call it unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (a bench has no better way to
    /// surface the failure).
    pub fn finish(&self) {
        let Some(path) = &self.json_path else {
            return;
        };
        std::fs::write(path, results_to_json(&self.results.borrow()))
            .unwrap_or_else(|e| panic!("cannot write bench JSON to {}: {e}", path.display()));
        println!(
            "\nwrote {} result(s) to {}",
            self.results.borrow().len(),
            path.display()
        );
    }
}

/// Renders measurements as the bench JSON document.
pub fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        // Bench names are plain ASCII identifiers; escape the JSON
        // specials anyway so a stray quote cannot corrupt the document.
        let name: String = r
            .name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}{comma}\n",
            r.ns_per_iter, r.iters
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Formats a duration with a unit that keeps 3–4 significant digits.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_cheap_closures() {
        let bench = Bench::unfiltered();
        let time = bench
            .bench("harness_selftest_noop", || std::hint::black_box(1 + 1))
            .expect("unfiltered bench always measures");
        assert!(time < Duration::from_millis(1));
        let results = bench.results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "harness_selftest_noop");
        assert!(results[0].ns_per_iter >= 0.0 && results[0].iters >= 1);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let bench = Bench {
            filter: Some("match-me".to_owned()),
            json_path: None,
            results: RefCell::new(Vec::new()),
        };
        assert!(bench.bench("other", || 0).is_none());
        assert!(bench.bench("does match-me indeed", || 0).is_some());
        // Filtered-out benches are not recorded.
        assert_eq!(bench.results().len(), 1);
    }

    #[test]
    fn duration_units_scale() {
        assert_eq!(format_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(format_duration(Duration::from_micros(123)), "123.00 us");
        assert_eq!(format_duration(Duration::from_millis(45)), "45.00 ms");
        assert_eq!(format_duration(Duration::from_secs(12)), "12.00 s");
    }

    #[test]
    fn json_document_shape_is_stable() {
        let json = results_to_json(&[
            BenchResult {
                name: "a".into(),
                ns_per_iter: 1234.5,
                iters: 7,
            },
            BenchResult {
                name: "b\"q".into(),
                ns_per_iter: 2.0,
                iters: 1,
            },
        ]);
        assert!(json.starts_with("{\n  \"results\": [\n"));
        assert!(json.contains("{\"name\": \"a\", \"ns_per_iter\": 1234.5, \"iters\": 7},"));
        assert!(json.contains("\\\"q"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn finish_without_json_flag_is_a_noop() {
        let bench = Bench::unfiltered();
        bench.record("x", Duration::from_nanos(10), 1);
        bench.finish();
    }
}
