//! A minimal `std::time` benchmark harness for `harness = false` bench targets.
//!
//! Offline stand-in for Criterion: each measurement warms up once, auto-scales
//! the iteration count towards a ~200 ms batch, runs up to three batches and
//! reports the best per-iteration time (the best batch is the least noisy
//! estimate on a busy machine).  No statistics beyond that — the goal is
//! stable, comparable numbers with zero external dependencies.

use std::time::{Duration, Instant};

/// Target wall-clock length of one measured batch.
const TARGET_BATCH: Duration = Duration::from_millis(200);
/// Batches per measurement (fewer when a single iteration is already slow).
const BATCHES: u32 = 3;

/// A bench runner: owns the name filter passed on the command line.
///
/// `cargo bench <filter>` measures only benches whose name contains `filter`;
/// the `--bench` flag cargo forwards is ignored.
pub struct Bench {
    filter: Option<String>,
}

impl Bench {
    /// Creates a runner from `std::env::args`.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Self { filter }
    }

    /// Creates a runner that measures everything (tests / direct calls).
    pub fn unfiltered() -> Self {
        Self { filter: None }
    }

    /// Whether a bench with this name passes the command-line filter.
    pub fn should_run(&self, name: &str) -> bool {
        self.filter
            .as_ref()
            .is_none_or(|filter| name.contains(filter.as_str()))
    }

    /// Measures `f`, prints one report line, and returns the best
    /// per-iteration time (`None` when filtered out).
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Option<Duration> {
        if !self.should_run(name) {
            return None;
        }

        // Warm-up: one untimed-ish call that also calibrates the batch size.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let iters = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        let batches = if once > TARGET_BATCH { 1 } else { BATCHES };

        let mut best = Duration::MAX;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            best = best.min(start.elapsed() / iters);
        }

        println!(
            "{name:<44} {:>12}/iter   ({batches} x {iters} iters)",
            format_duration(best)
        );
        Some(best)
    }
}

/// Formats a duration with a unit that keeps 3–4 significant digits.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_cheap_closures() {
        let bench = Bench::unfiltered();
        let time = bench
            .bench("harness_selftest_noop", || std::hint::black_box(1 + 1))
            .expect("unfiltered bench always measures");
        assert!(time < Duration::from_millis(1));
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let bench = Bench {
            filter: Some("match-me".to_owned()),
        };
        assert!(bench.bench("other", || 0).is_none());
        assert!(bench.bench("does match-me indeed", || 0).is_some());
    }

    #[test]
    fn duration_units_scale() {
        assert_eq!(format_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(format_duration(Duration::from_micros(123)), "123.00 us");
        assert_eq!(format_duration(Duration::from_millis(45)), "45.00 ms");
        assert_eq!(format_duration(Duration::from_secs(12)), "12.00 s");
    }
}
