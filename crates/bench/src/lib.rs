//! Shared helpers for the workspace benchmarks.
//!
//! The benches reuse the experiment harness (`autopower-experiments`) with its fast
//! settings.  Because the build environment is fully offline, the benches run on the
//! small [`harness`] module below (plain `std::time` measurement, `harness = false`
//! targets) instead of Criterion; the measurement loop is deliberately simple —
//! auto-scaled iteration counts, best-of-N batches — but the reported numbers are
//! stable enough to compare substrate changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use autopower::{Corpus, CorpusSpec};
use autopower_config::{boom_configs, CpuConfig, Workload};
use autopower_perfsim::SimConfig;

pub mod harness;

/// A small, fixed corpus used by the substrate benches: three configurations, two
/// workloads, short simulations.
pub fn bench_corpus() -> Corpus {
    let cfgs = boom_configs();
    Corpus::generate(
        &[cfgs[0], cfgs[7], cfgs[14]],
        &[Workload::Dhrystone, Workload::Vvadd],
        &CorpusSpec {
            sim: SimConfig {
                max_instructions: 4_000,
                ..SimConfig::fast()
            },
            ..CorpusSpec::fast()
        },
    )
}

/// The configurations used by the substrate benches.
pub fn bench_configs() -> Vec<CpuConfig> {
    let cfgs = boom_configs();
    vec![cfgs[0], cfgs[7], cfgs[14]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_corpus_is_small_but_complete() {
        let c = bench_corpus();
        assert_eq!(c.runs().len(), 6);
        assert_eq!(bench_configs().len(), 3);
    }
}
