//! One bench per table / figure of the paper's evaluation.
//!
//! Each bench regenerates the corresponding experiment on the reduced ("fast") corpus;
//! the corpora are generated once outside the measurement loop, so the measured time is
//! the modelling work (training + prediction + metric computation) of the experiment.
//!
//! Run with `cargo bench --bench paper_experiments [filter]`.

use autopower_bench::harness::Bench;
use autopower_experiments::Experiments;
use std::hint::black_box;

fn main() {
    let bench = Bench::from_args();

    let exp = Experiments::fast();
    // Populate the cached corpora so the measurement loops exclude simulation.
    let _ = exp.average_corpus();
    let _ = exp.trace_corpus();

    bench.bench("fig1_obs1_breakdown", || black_box(exp.obs1_breakdown()));
    bench.bench("table1_hardware_model", || {
        black_box(exp.table1_hardware_model())
    });
    bench.bench("fig4_accuracy_2cfg", || {
        black_box(exp.fig4_accuracy_two_configs().unwrap())
    });
    bench.bench("fig5_accuracy_3cfg", || {
        black_box(exp.fig5_accuracy_three_configs().unwrap())
    });
    bench.bench("fig6_training_sweep", || {
        black_box(exp.fig6_training_sweep().unwrap())
    });
    bench.bench("fig7_clock_detail", || black_box(exp.fig7_clock_detail()));
    bench.bench("fig8_sram_detail", || black_box(exp.fig8_sram_detail()));
    bench.bench("table4_power_trace", || black_box(exp.table4_power_trace()));
    bench.bench("xval_autopower", || {
        black_box(
            exp.cross_validation_model(autopower::ModelKind::AutoPower)
                .unwrap(),
        )
    });
    // The ablation regenerates corpora at several distortion levels inside the
    // call, so it is the heaviest experiment by far.
    bench.bench("ablation_program_features", || {
        black_box(exp.ablation_study())
    });
}
