//! One Criterion bench per table / figure of the paper's evaluation.
//!
//! Each bench regenerates the corresponding experiment on the reduced ("fast") corpus;
//! the corpora are generated once outside the measurement loop, so the measured time is
//! the modelling work (training + prediction + metric computation) of the experiment.

use autopower_experiments::Experiments;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn warmed_harness() -> Experiments {
    let exp = Experiments::fast();
    // Populate the cached corpora so the measurement loops exclude simulation.
    let _ = exp.average_corpus();
    let _ = exp.trace_corpus();
    exp
}

fn bench_obs1_breakdown(c: &mut Criterion) {
    let exp = warmed_harness();
    c.bench_function("fig1_obs1_breakdown", |b| {
        b.iter(|| black_box(exp.obs1_breakdown()))
    });
}

fn bench_table1_hardware_model(c: &mut Criterion) {
    let exp = warmed_harness();
    c.bench_function("table1_hardware_model", |b| {
        b.iter(|| black_box(exp.table1_hardware_model()))
    });
}

fn bench_fig4_accuracy_2cfg(c: &mut Criterion) {
    let exp = warmed_harness();
    c.bench_function("fig4_accuracy_2cfg", |b| {
        b.iter(|| black_box(exp.fig4_accuracy_two_configs()))
    });
}

fn bench_fig5_accuracy_3cfg(c: &mut Criterion) {
    let exp = warmed_harness();
    c.bench_function("fig5_accuracy_3cfg", |b| {
        b.iter(|| black_box(exp.fig5_accuracy_three_configs()))
    });
}

fn bench_fig6_training_sweep(c: &mut Criterion) {
    let exp = warmed_harness();
    c.bench_function("fig6_training_sweep", |b| {
        b.iter(|| black_box(exp.fig6_training_sweep()))
    });
}

fn bench_fig7_clock_detail(c: &mut Criterion) {
    let exp = warmed_harness();
    c.bench_function("fig7_clock_detail", |b| {
        b.iter(|| black_box(exp.fig7_clock_detail()))
    });
}

fn bench_fig8_sram_detail(c: &mut Criterion) {
    let exp = warmed_harness();
    c.bench_function("fig8_sram_detail", |b| {
        b.iter(|| black_box(exp.fig8_sram_detail()))
    });
}

fn bench_table4_power_trace(c: &mut Criterion) {
    let exp = warmed_harness();
    c.bench_function("table4_power_trace", |b| {
        b.iter(|| black_box(exp.table4_power_trace()))
    });
}

fn bench_ablation_program_features(c: &mut Criterion) {
    let exp = warmed_harness();
    // The ablation regenerates corpora at several distortion levels inside the call, so
    // it is the heaviest experiment; a tiny sample count keeps the bench suite fast.
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("ablation_program_features", |b| {
        b.iter(|| black_box(exp.ablation_study()))
    });
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = paper;
    config = configure();
    targets =
        bench_obs1_breakdown,
        bench_table1_hardware_model,
        bench_fig4_accuracy_2cfg,
        bench_fig5_accuracy_3cfg,
        bench_fig6_training_sweep,
        bench_fig7_clock_detail,
        bench_fig8_sram_detail,
        bench_table4_power_trace,
        bench_ablation_program_features
}
criterion_main!(paper);
