//! Corpus-generation throughput: serial loop vs the staged parallel pipeline.
//!
//! Generates a paper-scale corpus (15 configurations × 6 workloads = 90 runs,
//! fast simulation settings) once per thread count and reports runs/sec plus
//! the speedup over the serial path.  This is the acceptance benchmark for the
//! parallel substrate pipeline: on an N-core machine the parallel path should
//! approach N× the serial throughput (stage 2, performance simulation,
//! dominates and parallelises per run).
//!
//! Run with `cargo bench --bench corpus_pipeline`.

use autopower::{Corpus, CorpusSpec};
use autopower_bench::harness::{format_duration, Bench};
use autopower_config::{boom_configs, Workload};
use autopower_perfsim::SimConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Workload set of the throughput corpus (6 of the riscv-tests workloads).
const WORKLOADS: [Workload; 6] = [
    Workload::Dhrystone,
    Workload::Median,
    Workload::Qsort,
    Workload::Rsort,
    Workload::Towers,
    Workload::Vvadd,
];

fn generate(threads: usize) -> Duration {
    let configs = boom_configs();
    let spec = CorpusSpec {
        sim: SimConfig {
            max_instructions: 8_000,
            ..SimConfig::fast()
        },
        ..CorpusSpec::fast()
    }
    .threads(threads);

    // Best of three generations: the least noisy estimate on a shared machine.
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let corpus = Corpus::generate(&configs, &WORKLOADS, &spec);
        best = best.min(start.elapsed());
        assert_eq!(corpus.runs().len(), configs.len() * WORKLOADS.len());
        black_box(corpus);
    }
    best
}

fn main() {
    // Honour the `cargo bench <filter>` name filter like the sibling bench
    // binaries: a filtered invocation aimed elsewhere must not pay for the
    // multi-second throughput suite.
    if !Bench::from_args().should_run("corpus_pipeline") {
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runs = boom_configs().len() * WORKLOADS.len();
    println!(
        "corpus generation throughput: {runs} runs (15 configs x 6 workloads), {cores} core(s)\n"
    );

    let serial = generate(1);
    let serial_rate = runs as f64 / serial.as_secs_f64();
    println!(
        "{:<28} {:>10}   {:>8.1} runs/sec   1.00x",
        "corpus_serial_threads1",
        format_duration(serial),
        serial_rate
    );

    let mut thread_counts = vec![2, 4, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    thread_counts.retain(|&t| t > 1);
    for threads in thread_counts {
        let parallel = generate(threads);
        let rate = runs as f64 / parallel.as_secs_f64();
        println!(
            "{:<28} {:>10}   {:>8.1} runs/sec   {:.2}x",
            format!("corpus_parallel_threads{threads}"),
            format_duration(parallel),
            rate,
            serial.as_secs_f64() / parallel.as_secs_f64()
        );
    }
}
