//! Load generator for the prediction server: requests/sec and latency
//! percentiles over loopback TCP against an in-process `serve::Server`.
//!
//! Starts a server from a saved fast-trained `autopower` model (the
//! cold-start path the real binary takes — no retraining), then drives it
//! with concurrent client connections issuing fixed batches and records the
//! mean per-request wall time (the throughput entry: requests/sec =
//! 1e9 / ns_per_iter) and the p50/p99 request latencies.  Two batch shapes
//! bracket the service's envelope: single-config requests (latency-bound)
//! and 16-config × 3-workload requests (batch-scoring-bound).
//!
//! Run with `cargo bench --bench serve [filter] [--json FILE]`.

use autopower::{save_model, Corpus, CorpusSpec, ModelKind};
use autopower_bench::harness::Bench;
use autopower_config::{boom_configs, ConfigId, CpuConfig, DesignSpace, Workload};
use autopower_serve::client::{Client, RetryPolicy};
use autopower_serve::server::{ServeOptions, Server};
use std::time::{Duration, Instant};

/// Client connections driving the server concurrently.
const CONNECTIONS: usize = 4;

/// Requests issued per connection per scenario.
const REQUESTS_PER_CONNECTION: usize = 25;

/// Connections in the overload scenario — enough to keep the shedding queue
/// saturated on one worker.
const OVERLOAD_CONNECTIONS: usize = 8;

/// Queue bound (points) of the overload scenario's server: small enough that
/// shedding actually happens under `OVERLOAD_CONNECTIONS` concurrent batches.
const OVERLOAD_MAX_QUEUE: usize = 64;

/// Trains the served model once and saves it where the server will load it.
fn saved_model_path() -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("autopower-serve-bench-{}.apm", std::process::id()));
    let cfgs = boom_configs();
    let corpus = Corpus::generate(
        &[cfgs[0], cfgs[14]],
        &[Workload::Dhrystone, Workload::Vvadd],
        &CorpusSpec::fast(),
    );
    let model = ModelKind::AutoPower
        .train(&corpus, &[ConfigId::new(1), ConfigId::new(15)])
        .expect("train the served model");
    save_model(model.as_ref(), &path).expect("save the served model");
    path
}

/// Drives one scenario: every connection issues `REQUESTS_PER_CONNECTION`
/// identical batches; returns every request latency plus the scenario wall
/// time.
fn drive(
    server: &Server,
    configs: &[CpuConfig],
    workloads: &[Workload],
) -> (Vec<Duration>, Duration) {
    let start = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONNECTIONS)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(server.addr()).expect("connect");
                    (0..REQUESTS_PER_CONNECTION)
                        .map(|_| {
                            let sent = Instant::now();
                            client
                                .predict(ModelKind::AutoPower, configs, workloads)
                                .expect("predict");
                            sent.elapsed()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed();
    latencies.sort_unstable();
    (latencies, wall)
}

/// The `k`-th percentile of sorted latencies (nearest-rank).
fn percentile(sorted: &[Duration], k: usize) -> Duration {
    let rank = (sorted.len() * k).div_ceil(100).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn scenario(
    bench: &Bench,
    server: &Server,
    label: &str,
    configs: &[CpuConfig],
    workloads: &[Workload],
) {
    // One untimed warm-up pass populates the simulation cache and worker
    // scratch, so the measured pass reflects steady-state serving.
    drive(server, configs, workloads);
    let (latencies, wall) = drive(server, configs, workloads);
    let total = latencies.len() as u64;
    let per_request = wall / total as u32;
    let rps = 1e9 / per_request.as_nanos() as f64;
    println!(
        "serve_{label}: {total} requests over {CONNECTIONS} connections in {:.2?} -> {rps:.1} req/s",
        wall
    );
    bench.record(&format!("serve_rps_{label}"), per_request, total);
    bench.record(
        &format!("serve_p50_{label}"),
        percentile(&latencies, 50),
        total,
    );
    bench.record(
        &format!("serve_p99_{label}"),
        percentile(&latencies, 99),
        total,
    );
}

/// Drives a deliberately overloaded server: every connection retries shed
/// requests with jittered backoff until they land, so each latency sample is
/// the *end-to-end* time a well-behaved client pays under load shedding —
/// queueing, Overloaded refusals, reconnects and backoff included.
fn drive_overloaded(
    server: &Server,
    configs: &[CpuConfig],
    workloads: &[Workload],
) -> (Vec<Duration>, Duration) {
    let start = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..OVERLOAD_CONNECTIONS)
            .map(|connection| {
                scope.spawn(move || {
                    let policy = RetryPolicy {
                        attempts: 100,
                        base_backoff: Duration::from_millis(1),
                        max_backoff: Duration::from_millis(50),
                        seed: connection as u64,
                        timeout: Duration::from_secs(30),
                    };
                    let mut client = Client::connect_with(server.addr(), policy).expect("connect");
                    (0..REQUESTS_PER_CONNECTION)
                        .map(|_| {
                            let sent = Instant::now();
                            client
                                .predict(ModelKind::AutoPower, configs, workloads)
                                .expect("overloaded predict converges");
                            sent.elapsed()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed();
    latencies.sort_unstable();
    (latencies, wall)
}

/// The load-shedding scenario: one worker, a small queue bound, twice the
/// connections — a saturated service answering honestly instead of queueing
/// without bound.
fn overload_scenario(bench: &Bench, path: &std::path::Path) {
    let server = Server::start(
        "127.0.0.1:0",
        vec![path.to_path_buf()],
        ServeOptions {
            workers: 1,
            max_queue: OVERLOAD_MAX_QUEUE,
            ..ServeOptions::fast()
        },
    )
    .expect("overload server starts");
    let configs = DesignSpace::boom().sample(4, 3);
    let workloads = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];

    drive_overloaded(&server, &configs, &workloads);
    let (latencies, wall) = drive_overloaded(&server, &configs, &workloads);
    let total = latencies.len() as u64;
    let per_request = wall / total as u32;
    let rps = 1e9 / per_request.as_nanos() as f64;
    println!(
        "serve_overload: {total} requests over {OVERLOAD_CONNECTIONS} connections \
         (queue bound {OVERLOAD_MAX_QUEUE} points) in {wall:.2?} -> {rps:.1} req/s"
    );
    bench.record("serve_rps_overload", per_request, total);
    bench.record("serve_p50_overload", percentile(&latencies, 50), total);
    bench.record("serve_p99_overload", percentile(&latencies, 99), total);

    let mut client = Client::connect(server.addr()).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
}

fn main() {
    let bench = Bench::from_args();
    let path = saved_model_path();

    // Immediate dispatch (max-wait 0): the latency-bound configuration.
    let server = Server::start(
        "127.0.0.1:0",
        vec![path.clone()],
        ServeOptions {
            workers: 2,
            ..ServeOptions::fast()
        },
    )
    .expect("server starts");

    let single = DesignSpace::boom().sample(1, 3);
    let batch = DesignSpace::boom().sample(16, 3);
    let one_workload = [Workload::Dhrystone];
    let three_workloads = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];

    if bench.should_run("serve_rps_b1w1") {
        scenario(&bench, &server, "b1w1", &single, &one_workload);
    }
    if bench.should_run("serve_rps_b16w3") {
        scenario(&bench, &server, "b16w3", &batch, &three_workloads);
    }

    let mut client = Client::connect(server.addr()).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");

    // The shedding scenario runs on its own deliberately undersized server.
    if bench.should_run("serve_rps_overload") {
        overload_scenario(&bench, &path);
    }
    let _ = std::fs::remove_file(&path);

    bench.finish();
}
