//! Train + predict throughput of every `ModelKind` registry model, plus the
//! raw GBDT fit cost at paper-scale settings.
//!
//! Trains each of the four registry models on the same fast corpus and
//! measures (a) time to train and (b) single-run prediction throughput through
//! the `dyn PowerModel` trait path — the cost the sweep, trace and
//! cross-validation engines actually pay per point.  The `gbdt_fit_*` benches
//! isolate the boosting trainer itself (120 trees, the paper's setting) on a
//! synthetic 128 × 32 design so the pre-sorted tree builder is measured
//! without any substrate cost.
//!
//! Run with `cargo bench --bench models [filter] [--json FILE]`.

use autopower::{Corpus, CorpusSpec, ModelKind, PowerModel};
use autopower_bench::harness::Bench;
use autopower_config::{boom_configs, ConfigId, Workload};
use autopower_ml::{GbdtParams, GradientBoosting, Matrix};
use std::hint::black_box;

/// Synthetic paper-scale regression design: 128 samples × 32 features.
fn synthetic() -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..128)
        .map(|i| {
            (0..32)
                .map(|j| ((i * 31 + j * 17) % 97) as f64 * 0.13 + (i % 7) as f64)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| r[0] * 2.0 + (r[1] * 0.3).sin() * 5.0 + r[2] * r[3] * 0.01)
        .collect();
    (x, y)
}

fn main() {
    let bench = Bench::from_args();

    let (x, y) = synthetic();
    let matrix = Matrix::from_rows(&x);
    bench.bench("gbdt_fit_128x32_120trees", || {
        let mut m = GradientBoosting::new(GbdtParams::default());
        m.fit_matrix(&matrix, &y).expect("fit succeeds");
        black_box(m)
    });
    bench.bench("gbdt_fit_128x32_120trees_subsampled", || {
        let mut m = GradientBoosting::new(GbdtParams {
            subsample: 0.8,
            colsample: 0.8,
            ..GbdtParams::default()
        });
        m.fit_matrix(&matrix, &y).expect("fit succeeds");
        black_box(m)
    });
    {
        let mut m = GradientBoosting::new(GbdtParams::default());
        m.fit_matrix(&matrix, &y).expect("fit succeeds");
        let mut out = Vec::new();
        bench.bench("gbdt_predict_batch_128x32_120trees", || {
            m.forest().predict_into(&matrix, &mut out);
            black_box(out.last().copied())
        });
    }

    let cfgs = boom_configs();
    let corpus = Corpus::generate(
        &[cfgs[0], cfgs[7], cfgs[14]],
        &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
        &CorpusSpec::fast(),
    );
    let train = [ConfigId::new(1), ConfigId::new(15)];
    let runs = corpus.runs();
    println!(
        "\nregistry model train + predict throughput ({} training runs, {} predict runs)\n",
        corpus.training_runs(&train).len(),
        runs.len()
    );

    for kind in ModelKind::ALL {
        bench.bench(&format!("train_{kind}"), || {
            black_box(kind.train(&corpus, &train).expect("training succeeds"))
        });
    }

    let models: Vec<(ModelKind, Box<dyn PowerModel>)> = ModelKind::ALL
        .into_iter()
        .map(|kind| {
            (
                kind,
                kind.train(&corpus, &train).expect("training succeeds"),
            )
        })
        .collect();
    for (kind, model) in &models {
        bench.bench(&format!("predict_all_runs_{kind}"), || {
            runs.iter().map(|run| model.predict_total(run)).sum::<f64>()
        });
    }

    bench.finish();
}
