//! Train + predict throughput of every `ModelKind` registry model.
//!
//! Trains each of the four registry models on the same fast corpus and
//! measures (a) time to train and (b) single-run prediction throughput through
//! the `dyn PowerModel` trait path — the cost the sweep, trace and
//! cross-validation engines actually pay per point.
//!
//! Run with `cargo bench --bench models [filter]`.

use autopower::{Corpus, CorpusSpec, ModelKind, PowerModel};
use autopower_bench::harness::Bench;
use autopower_config::{boom_configs, ConfigId, Workload};
use std::hint::black_box;

fn main() {
    let bench = Bench::from_args();

    let cfgs = boom_configs();
    let corpus = Corpus::generate(
        &[cfgs[0], cfgs[7], cfgs[14]],
        &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
        &CorpusSpec::fast(),
    );
    let train = [ConfigId::new(1), ConfigId::new(15)];
    let runs = corpus.runs();
    println!(
        "registry model train + predict throughput ({} training runs, {} predict runs)\n",
        corpus.training_runs(&train).len(),
        runs.len()
    );

    for kind in ModelKind::ALL {
        bench.bench(&format!("train_{kind}"), || {
            black_box(kind.train(&corpus, &train).expect("training succeeds"))
        });
    }

    let models: Vec<(ModelKind, Box<dyn PowerModel>)> = ModelKind::ALL
        .into_iter()
        .map(|kind| {
            (
                kind,
                kind.train(&corpus, &train).expect("training succeeds"),
            )
        })
        .collect();
    for (kind, model) in &models {
        bench.bench(&format!("predict_all_runs_{kind}"), || {
            runs.iter().map(|run| model.predict_total(run)).sum::<f64>()
        });
    }
}
