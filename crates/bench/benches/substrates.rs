//! Micro-benchmarks of the substrates: synthesis, performance simulation, golden power
//! evaluation, ML training and the macro mapping rule.
//!
//! Run with `cargo bench --bench substrates [filter]`.

use autopower::{AutoPower, PowerTracePredictor};
use autopower_bench::harness::Bench;
use autopower_bench::{bench_configs, bench_corpus};
use autopower_config::{ConfigId, Workload};
use autopower_ml::{GbdtParams, GradientBoosting, Regressor, RidgeRegression};
use autopower_netlist::synthesize;
use autopower_perfsim::{simulate, SimConfig};
use autopower_powersim::evaluate_run;
use autopower_techlib::TechLibrary;
use autopower_workloads::StreamGenerator;
use std::hint::black_box;

fn main() {
    let bench = Bench::from_args();
    let lib = TechLibrary::tsmc40_like();
    let configs = bench_configs();
    let short_sim = SimConfig {
        max_instructions: 4_000,
        ..SimConfig::fast()
    };

    bench.bench("substrate_netlist_synthesis", || {
        black_box(synthesize(&configs[2], &lib))
    });

    bench.bench("substrate_perfsim_4k_instructions", || {
        black_box(simulate(&configs[1], Workload::Qsort, &short_sim))
    });

    bench.bench("substrate_stream_10k_instructions", || {
        let gen = StreamGenerator::new(Workload::Gemm, 3);
        black_box(gen.take(10_000).count())
    });

    let netlist = synthesize(&configs[1], &lib);
    let sim = simulate(&configs[1], Workload::Dhrystone, &short_sim);
    bench.bench("substrate_golden_power_report", || {
        black_box(evaluate_run(&netlist, &sim, &lib))
    });

    bench.bench("substrate_macro_mapping", || {
        black_box(lib.sram().map_block(black_box(120), black_box(320)))
    });

    let ridge_x: Vec<Vec<f64>> = (0..32)
        .map(|i| vec![i as f64, (i * i % 17) as f64, 3.0])
        .collect();
    let ridge_y: Vec<f64> = ridge_x.iter().map(|r| 2.0 * r[0] + 0.3 * r[1]).collect();
    bench.bench("ml_ridge_fit_32x3", || {
        let mut m = RidgeRegression::default();
        m.fit(&ridge_x, &ridge_y).expect("well-formed training set");
        black_box(m.predict(&ridge_x[7]))
    });

    let gbdt_x: Vec<Vec<f64>> = (0..24)
        .map(|i| vec![(i % 3) as f64, (i % 8) as f64, (i * 7 % 13) as f64])
        .collect();
    let gbdt_y: Vec<f64> = gbdt_x
        .iter()
        .map(|r| r[0] * 3.0 + (r[1] - 4.0).abs())
        .collect();
    let gbdt_params = GbdtParams {
        n_estimators: 60,
        ..GbdtParams::default()
    };
    bench.bench("ml_gbdt_fit_24x3_60trees", || {
        let mut m = GradientBoosting::new(gbdt_params);
        m.fit(&gbdt_x, &gbdt_y).expect("well-formed training set");
        black_box(m.predict(&gbdt_x[5]))
    });

    let corpus = bench_corpus();
    let train = [ConfigId::new(1), ConfigId::new(15)];
    bench.bench("autopower_train_2cfg", || {
        black_box(AutoPower::train(&corpus, &train).expect("training succeeds"))
    });

    let model = AutoPower::train(&corpus, &train).expect("training succeeds");
    let run = corpus
        .run(ConfigId::new(8), Workload::Vvadd)
        .expect("run exists");
    bench.bench("autopower_predict_single_run", || {
        black_box(model.predict_run(run))
    });
    bench.bench("autopower_predict_power_trace", || {
        black_box(PowerTracePredictor::new(&model).predict_trace(run))
    });
}
