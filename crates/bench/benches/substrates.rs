//! Micro-benchmarks of the substrates: synthesis, performance simulation, golden power
//! evaluation, ML training and the macro mapping rule.

use autopower::{AutoPower, PowerTracePredictor};
use autopower_bench::{bench_configs, bench_corpus};
use autopower_config::{ConfigId, Workload};
use autopower_ml::{GbdtParams, GradientBoosting, Regressor, RidgeRegression};
use autopower_netlist::synthesize;
use autopower_perfsim::{simulate, SimConfig};
use autopower_powersim::evaluate_run;
use autopower_techlib::TechLibrary;
use autopower_workloads::StreamGenerator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_netlist_synthesis(c: &mut Criterion) {
    let lib = TechLibrary::tsmc40_like();
    let cfg = bench_configs()[2];
    c.bench_function("substrate_netlist_synthesis", |b| {
        b.iter(|| black_box(synthesize(&cfg, &lib)))
    });
}

fn bench_perfsim_run(c: &mut Criterion) {
    let cfg = bench_configs()[1];
    let sim = SimConfig {
        max_instructions: 4_000,
        ..SimConfig::fast()
    };
    c.bench_function("substrate_perfsim_4k_instructions", |b| {
        b.iter(|| black_box(simulate(&cfg, Workload::Qsort, &sim)))
    });
}

fn bench_stream_generation(c: &mut Criterion) {
    c.bench_function("substrate_stream_10k_instructions", |b| {
        b.iter(|| {
            let gen = StreamGenerator::new(Workload::Gemm, 3);
            black_box(gen.take(10_000).count())
        })
    });
}

fn bench_golden_power(c: &mut Criterion) {
    let lib = TechLibrary::tsmc40_like();
    let cfg = bench_configs()[1];
    let netlist = synthesize(&cfg, &lib);
    let sim = simulate(
        &cfg,
        Workload::Dhrystone,
        &SimConfig {
            max_instructions: 4_000,
            ..SimConfig::fast()
        },
    );
    c.bench_function("substrate_golden_power_report", |b| {
        b.iter(|| black_box(evaluate_run(&netlist, &sim, &lib)))
    });
}

fn bench_macro_mapping(c: &mut Criterion) {
    let lib = TechLibrary::tsmc40_like();
    c.bench_function("substrate_macro_mapping", |b| {
        b.iter(|| black_box(lib.sram().map_block(black_box(120), black_box(320))))
    });
}

fn bench_ridge_fit(c: &mut Criterion) {
    let x: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64, (i * i % 17) as f64, 3.0]).collect();
    let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 0.3 * r[1]).collect();
    c.bench_function("ml_ridge_fit_32x3", |b| {
        b.iter(|| {
            let mut m = RidgeRegression::default();
            m.fit(&x, &y).expect("well-formed training set");
            black_box(m.predict(&x[7]))
        })
    });
}

fn bench_gbdt_fit(c: &mut Criterion) {
    let x: Vec<Vec<f64>> = (0..24)
        .map(|i| vec![(i % 3) as f64, (i % 8) as f64, (i * 7 % 13) as f64])
        .collect();
    let y: Vec<f64> = x.iter().map(|r| r[0] * 3.0 + (r[1] - 4.0).abs()).collect();
    let params = GbdtParams {
        n_estimators: 60,
        ..GbdtParams::default()
    };
    c.bench_function("ml_gbdt_fit_24x3_60trees", |b| {
        b.iter(|| {
            let mut m = GradientBoosting::new(params);
            m.fit(&x, &y).expect("well-formed training set");
            black_box(m.predict(&x[5]))
        })
    });
}

fn bench_autopower_training(c: &mut Criterion) {
    let corpus = bench_corpus();
    let train = [ConfigId::new(1), ConfigId::new(15)];
    let mut group = c.benchmark_group("autopower");
    group.sample_size(10);
    group.bench_function("autopower_train_2cfg", |b| {
        b.iter(|| black_box(AutoPower::train(&corpus, &train).expect("training succeeds")))
    });
    group.finish();
}

fn bench_autopower_prediction(c: &mut Criterion) {
    let corpus = bench_corpus();
    let train = [ConfigId::new(1), ConfigId::new(15)];
    let model = AutoPower::train(&corpus, &train).expect("training succeeds");
    let run = corpus.run(ConfigId::new(8), Workload::Vvadd).expect("run exists");
    c.bench_function("autopower_predict_single_run", |b| {
        b.iter(|| black_box(model.predict_run(run)))
    });
    c.bench_function("autopower_predict_power_trace", |b| {
        b.iter(|| black_box(PowerTracePredictor::new(&model).predict_trace(run)))
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = substrates;
    config = configure();
    targets =
        bench_netlist_synthesis,
        bench_perfsim_run,
        bench_stream_generation,
        bench_golden_power,
        bench_macro_mapping,
        bench_ridge_fit,
        bench_gbdt_fit,
        bench_autopower_training,
        bench_autopower_prediction
}
criterion_main!(substrates);
