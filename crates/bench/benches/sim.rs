//! Performance-simulation throughput: the raw hot loop and the sweep-level
//! simulation cache.
//!
//! Two families of measurements:
//!
//! 1. **Raw simulation** — `simulate_with` into a reused [`SimScratch`] per
//!    workload (the sweep hot path), plus one allocating `simulate` point of
//!    comparison.  `ns_per_iter` is one whole fast-budget simulation.
//! 2. **Cached vs uncached sweeps** — the same sweep run with the simulation
//!    cache on and off, over (a) a sampled design space where every
//!    configuration is simulation-distinct (honest ~0 % hit rate) and (b) a
//!    `BranchCount`-folded space where four configurations per workload share
//!    one simulation (75 % hit rate).  Output is bit-identical either way;
//!    only the time changes.
//!
//! Run with `cargo bench --bench sim [-- --json FILE]`.

use autopower::{AutoPower, Corpus, CorpusSpec, SweepEngine, SweepSpec};
use autopower_bench::harness::{format_duration, Bench};
use autopower_config::{boom_configs, ConfigId, CpuConfig, DesignSpace, HwParam, Workload};
use autopower_perfsim::{simulate, simulate_with, SimConfig, SimScratch};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Workloads of the raw-simulation measurements and the sweeps.
const WORKLOADS: [Workload; 3] = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];

/// Configurations of the sampled (simulation-distinct) sweep space.
const SAMPLED_CONFIGS: usize = 48;

/// A design space whose configurations differ only along `BranchCount`
/// values that fold to one predictor table size: simulation-identical,
/// power-distinct.  One simulation serves all four configurations.
fn folded_space() -> Vec<CpuConfig> {
    let configs: Vec<CpuConfig> = DesignSpace::boom()
        .with_axis(HwParam::FetchWidth, vec![4])
        .with_axis(HwParam::DecodeWidth, vec![2])
        .with_axis(HwParam::RobEntry, vec![64])
        .with_axis(HwParam::IntIssueWidth, vec![2])
        .with_axis(HwParam::MemFpIssueWidth, vec![1])
        .with_axis(HwParam::CacheWay, vec![4])
        .with_axis(HwParam::DtlbEntry, vec![16])
        .with_axis(HwParam::MshrEntry, vec![4])
        .with_axis(HwParam::BranchCount, vec![10, 12, 14, 16])
        .enumerate()
        .collect();
    assert_eq!(configs.len(), 4, "one free axis with four values");
    configs
}

/// Best-of-three sweep wall time over `configs` x [`WORKLOADS`], serial, with
/// the cache on or off.  A fresh engine per repetition so the cached variant
/// measures a cold cache, not a second pass over a warm one.
fn sweep(model: &AutoPower, configs: &[CpuConfig], cached: bool) -> Duration {
    let spec = SweepSpec::fast().threads(1).sim_cache(cached);
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let points = SweepEngine::new(model, spec).run(configs, &WORKLOADS);
        best = best.min(start.elapsed());
        assert_eq!(points.len(), configs.len() * WORKLOADS.len());
        black_box(points);
    }
    best
}

/// Runs one cached-vs-uncached pair, prints the comparison and the hit-rate
/// line, and records both measurements per configuration.
fn sweep_pair(bench: &Bench, model: &AutoPower, label: &str, configs: &[CpuConfig]) {
    let uncached = sweep(model, configs, false);
    let cached = sweep(model, configs, true);
    let n = configs.len() as u32;

    // One extra run purely to read the hit statistics of a full pass.
    let spec = SweepSpec::fast().threads(1).sim_cache(true);
    let engine = SweepEngine::new(model, spec);
    black_box(engine.run(configs, &WORKLOADS));
    let stats = engine.cache_stats();

    println!(
        "sweep_{label}: {} configs x {} workloads, cache {:.0}% hits ({} of {} simulations deduplicated)",
        configs.len(),
        WORKLOADS.len(),
        100.0 * stats.hit_rate(),
        stats.hits,
        stats.hits + stats.misses,
    );
    for (name, time) in [
        (format!("sweep_{label}_uncached"), uncached),
        (format!("sweep_{label}_cached"), cached),
    ] {
        println!(
            "  {name:<30} {:>10}   {:>8.1} configs/sec",
            format_duration(time),
            configs.len() as f64 / time.as_secs_f64()
        );
        bench.record(&name, time / n, u64::from(n));
    }
    println!(
        "  cached is {:.2}x the uncached rate\n",
        uncached.as_secs_f64() / cached.as_secs_f64()
    );
}

fn main() {
    let bench = Bench::from_args();

    // Raw simulation throughput: one fast-budget run per iteration, scratch
    // reused across iterations exactly as a sweep worker reuses it.
    let config = boom_configs()[7];
    let sim = SimConfig::fast();
    for workload in WORKLOADS {
        let mut scratch = SimScratch::new();
        bench.bench(&format!("sim_scratch_{workload}"), || {
            black_box(simulate_with(&config, workload, &sim, &mut scratch))
        });
    }
    // The allocating wrapper, for the before/after of scratch reuse.
    bench.bench("sim_fresh_dhrystone", || {
        black_box(simulate(&config, Workload::Dhrystone, &sim))
    });
    println!();

    // Sweep-level cache: only meaningful unfiltered or under a `sweep` filter.
    if bench.should_run("sweep") {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let model = AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)])
            .expect("training succeeds");

        let sampled = DesignSpace::boom().sample(SAMPLED_CONFIGS, 2025);
        sweep_pair(&bench, &model, "sampled", &sampled);
        sweep_pair(&bench, &model, "folded", &folded_space());
    }

    bench.finish();
}
