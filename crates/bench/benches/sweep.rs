//! Design-space sweep throughput: serial vs parallel batch inference.
//!
//! Trains one fast few-shot model, draws a fixed set of generated
//! configurations from the design space, and measures how many configurations
//! per second the sweep engine scores (each configuration = one performance
//! simulation + one power prediction per workload) with one worker versus a
//! pool.  This is the acceptance benchmark of the sweep subsystem: stage work
//! is embarrassingly parallel, so on an N-core machine the parallel rate
//! should approach N× serial.
//!
//! Run with `cargo bench --bench sweep [-- --json FILE]`.

use autopower::{AutoPower, Corpus, CorpusSpec, SweepEngine, SweepSpec};
use autopower_bench::harness::{format_duration, Bench};
use autopower_config::{boom_configs, ConfigId, DesignSpace, Workload};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Configurations scored per measurement.
const SWEEP_CONFIGS: usize = 96;

/// Workloads each configuration is scored on.
const WORKLOADS: [Workload; 3] = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];

fn sweep(model: &AutoPower, configs: &[autopower_config::CpuConfig], threads: usize) -> Duration {
    let spec = SweepSpec::fast().threads(threads);
    // Best of three sweeps: the least noisy estimate on a shared machine.
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let points = SweepEngine::new(model, spec).run(configs, &WORKLOADS);
        best = best.min(start.elapsed());
        assert_eq!(points.len(), configs.len() * WORKLOADS.len());
        black_box(points);
    }
    best
}

fn main() {
    let bench = Bench::from_args();
    if !bench.should_run("sweep") {
        return;
    }
    let cfgs = boom_configs();
    let corpus = Corpus::generate(
        &[cfgs[0], cfgs[14]],
        &[Workload::Dhrystone, Workload::Vvadd],
        &CorpusSpec::fast(),
    );
    let model = AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)])
        .expect("training succeeds");
    let configs = DesignSpace::boom().sample(SWEEP_CONFIGS, 2025);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "design-space sweep throughput: {SWEEP_CONFIGS} generated configs x {} workloads, \
         {cores} core(s)\n",
        WORKLOADS.len()
    );

    let serial = sweep(&model, &configs, 1);
    let serial_rate = SWEEP_CONFIGS as f64 / serial.as_secs_f64();
    println!(
        "{:<28} {:>10}   {:>8.1} configs/sec   1.00x",
        "sweep_serial_threads1",
        format_duration(serial),
        serial_rate
    );
    // Recorded per configuration, so `ns_per_iter` inverts to configs/sec.
    bench.record(
        "sweep_serial_threads1",
        serial / SWEEP_CONFIGS as u32,
        SWEEP_CONFIGS as u64,
    );

    let mut thread_counts = vec![2, 4, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    thread_counts.retain(|&t| t > 1);
    for threads in thread_counts {
        let parallel = sweep(&model, &configs, threads);
        let rate = SWEEP_CONFIGS as f64 / parallel.as_secs_f64();
        let name = format!("sweep_parallel_threads{threads}");
        println!(
            "{name:<28} {:>10}   {rate:>8.1} configs/sec   {:.2}x",
            format_duration(parallel),
            serial.as_secs_f64() / parallel.as_secs_f64()
        );
        bench.record(&name, parallel / SWEEP_CONFIGS as u32, SWEEP_CONFIGS as u64);
    }

    bench.finish();
}
