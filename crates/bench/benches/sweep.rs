//! Design-space sweep throughput: serial vs parallel batch inference.
//!
//! Trains one fast few-shot model, draws a fixed set of generated
//! configurations from the design space, and measures how many configurations
//! per second the sweep engine scores (each configuration = one performance
//! simulation + one power prediction per workload) with one worker versus a
//! pool.  This is the acceptance benchmark of the sweep subsystem: stage work
//! is embarrassingly parallel, so on an N-core machine the parallel rate
//! should approach N× serial.
//!
//! Run with `cargo bench --bench sweep [-- --json FILE]`.

use autopower::{
    surrogate_gbdt_params, ActivitySurrogate, AuditReport, AutoPower, Corpus, CorpusSpec,
    SimBackend, StreamSpec, SweepAggregator, SweepEngine, SweepSpec, SURROGATE_TRAIN_SEED,
};
use autopower_bench::harness::{format_duration, Bench};
use autopower_config::{boom_configs, ConfigId, DesignSpace, Workload};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Configurations scored per measurement.
const SWEEP_CONFIGS: usize = 96;

/// Workloads each configuration is scored on.
const WORKLOADS: [Workload; 3] = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];

/// Configurations per chunk of the streaming measurement (bounds its point
/// memory to `STREAM_CHUNK * WORKLOADS.len()` live points).
const STREAM_CHUNK: usize = 32;

/// Oracle-simulated configurations the bench surrogate trains on (untimed).
const SURROGATE_TRAIN: usize = 24;

/// Audit fraction for the surrogate measurement: deterministically re-checks
/// a couple of the 96 configurations exactly, so the timed region still pays
/// a representative (small) oracle cost and the run reports an error bound.
const SURROGATE_AUDIT_RATE: f64 = 0.02;

fn sweep(model: &AutoPower, configs: &[autopower_config::CpuConfig], threads: usize) -> Duration {
    let spec = SweepSpec::fast().threads(threads);
    // Best of three sweeps: the least noisy estimate on a shared machine.
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let points = SweepEngine::new(model, spec).run(configs, &WORKLOADS);
        best = best.min(start.elapsed());
        assert_eq!(points.len(), configs.len() * WORKLOADS.len());
        black_box(points);
    }
    best
}

/// One streaming sweep (same scoring path as [`sweep`], bounded-memory
/// aggregation instead of point retention); returns the best-of-three time
/// and the point-memory high-water mark.
fn stream_sweep(
    model: &AutoPower,
    configs: &[autopower_config::CpuConfig],
) -> (Duration, usize, usize) {
    let spec = SweepSpec {
        chunk_configs: STREAM_CHUNK,
        ..SweepSpec::fast().threads(1)
    };
    let mut best = Duration::MAX;
    let mut peak_points = 0;
    let mut retained_state = 0;
    for _ in 0..3 {
        let mut aggregator = SweepAggregator::new(WORKLOADS.len(), &StreamSpec::default());
        let start = Instant::now();
        let progress = SweepEngine::new(model, spec)
            .stream(
                configs.iter().copied(),
                &WORKLOADS,
                &mut aggregator,
                |_, _| Ok(true),
            )
            .expect("no checkpoint callback, no error");
        best = best.min(start.elapsed());
        assert!(progress.complete);
        assert_eq!(progress.configs_streamed, configs.len() as u64);
        peak_points = progress.peak_retained_points;
        retained_state = aggregator.retained_state();
        black_box(aggregator);
    }
    (best, peak_points, retained_state)
}

/// One surrogate-backed sweep over the same configurations and scoring path
/// as [`sweep`]; returns the best-of-three time and the audit error report.
/// The surrogate itself is trained by the caller, outside the timed region —
/// training is a one-off oracle cost amortized over every sweep that reuses
/// the surrogate.
fn surrogate_sweep(
    model: &AutoPower,
    surrogate: &ActivitySurrogate,
    configs: &[autopower_config::CpuConfig],
) -> (Duration, AuditReport) {
    let spec = SweepSpec::fast().threads(1);
    let mut best = Duration::MAX;
    let mut report = None;
    for _ in 0..3 {
        let engine = SweepEngine::new(model, spec)
            .with_backend(SimBackend::Surrogate {
                surrogate,
                audit_rate: SURROGATE_AUDIT_RATE,
            })
            .expect("valid audit rate and compatible surrogate");
        let start = Instant::now();
        let points = engine.run(configs, &WORKLOADS);
        best = best.min(start.elapsed());
        assert_eq!(points.len(), configs.len() * WORKLOADS.len());
        report = engine.audit_report();
        black_box(points);
    }
    let report = report.expect("surrogate backend always reports");
    assert!(
        report.audited_points > 0,
        "audit rate {SURROGATE_AUDIT_RATE} selected none of the {SWEEP_CONFIGS} configs"
    );
    (best, report)
}

fn main() {
    let bench = Bench::from_args();
    if !bench.should_run("sweep") {
        return;
    }
    let cfgs = boom_configs();
    let corpus = Corpus::generate(
        &[cfgs[0], cfgs[14]],
        &[Workload::Dhrystone, Workload::Vvadd],
        &CorpusSpec::fast(),
    );
    let model = AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)])
        .expect("training succeeds");
    let configs = DesignSpace::boom().sample(SWEEP_CONFIGS, 2025);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "design-space sweep throughput: {SWEEP_CONFIGS} generated configs x {} workloads, \
         {cores} core(s)\n",
        WORKLOADS.len()
    );

    let serial = sweep(&model, &configs, 1);
    let serial_rate = SWEEP_CONFIGS as f64 / serial.as_secs_f64();
    println!(
        "{:<28} {:>10}   {:>8.1} configs/sec   1.00x",
        "sweep_serial_threads1",
        format_duration(serial),
        serial_rate
    );
    // Recorded per configuration, so `ns_per_iter` inverts to configs/sec.
    bench.record(
        "sweep_serial_threads1",
        serial / SWEEP_CONFIGS as u32,
        SWEEP_CONFIGS as u64,
    );

    // Surrogate backend, same configurations and power model: the sweep runs
    // at prediction speed, with the simulator demoted to the audit oracle.
    let surrogate = ActivitySurrogate::train(
        &DesignSpace::boom(),
        &WORKLOADS,
        &SweepSpec::fast().sim,
        SURROGATE_TRAIN,
        SURROGATE_TRAIN_SEED,
        &surrogate_gbdt_params(),
    )
    .expect("surrogate training succeeds");
    let (surro, audit) = surrogate_sweep(&model, &surrogate, &configs);
    let surro_rate = SWEEP_CONFIGS as f64 / surro.as_secs_f64();
    println!(
        "{:<28} {:>10}   {:>8.1} configs/sec   {:.2}x",
        "sweep_surrogate_serial_threads1",
        format_duration(surro),
        surro_rate,
        serial.as_secs_f64() / surro.as_secs_f64(),
    );
    let total_mape = audit.total_mape.expect("audited points have a total error");
    println!(
        "{:<28} {} of {SWEEP_CONFIGS} configs audited exactly; total-power MAPE {:.3}%",
        "sweep_surrogate_audit",
        audit.audited_points / WORKLOADS.len() as u64,
        100.0 * total_mape,
    );
    bench.record(
        "sweep_surrogate_serial_threads1",
        surro / SWEEP_CONFIGS as u32,
        SWEEP_CONFIGS as u64,
    );
    // The audit error rides the ns_per_iter field as parts-per-million, like
    // the memory counts below: the JSON baseline pins the accuracy story next
    // to the throughput story.
    bench.record(
        "sweep_surrogate_total_mape_ppm",
        Duration::from_nanos((1e6 * total_mape).round() as u64),
        1,
    );
    // The full audit error table: one row per predicted event feature, so the
    // committed baseline carries the error bound with the same granularity the
    // CLI audit table reports.
    for event in &audit.per_event {
        let mape = event.mape.expect("audited points have per-event errors");
        println!(
            "{:<28}   {:>7.3}% MAPE over {} audited points",
            format!("sweep_surrogate_audit[{}]", event.name),
            100.0 * mape,
            event.samples,
        );
        bench.record(
            &format!("sweep_surrogate_audit_mape_ppm_{}", event.name),
            Duration::from_nanos((1e6 * mape).round() as u64),
            event.samples,
        );
    }

    // Streaming vs materialized, same serial scoring path: the time should
    // match sweep_serial_threads1 (aggregation folds are cheap against the
    // simulations) while point memory drops from configs x workloads to one
    // chunk's worth.
    let (stream, peak_points, retained_state) = stream_sweep(&model, &configs);
    let stream_rate = SWEEP_CONFIGS as f64 / stream.as_secs_f64();
    println!(
        "{:<28} {:>10}   {:>8.1} configs/sec   {:.2}x",
        "sweep_stream_serial_threads1",
        format_duration(stream),
        stream_rate,
        serial.as_secs_f64() / stream.as_secs_f64(),
    );
    let materialized_points = SWEEP_CONFIGS * WORKLOADS.len();
    println!(
        "{:<28} peak {peak_points} points (chunk {STREAM_CHUNK}) vs {materialized_points} \
         materialized; aggregator holds {retained_state} values",
        "sweep_stream_memory",
    );
    bench.record(
        "sweep_stream_serial_threads1",
        stream / SWEEP_CONFIGS as u32,
        SWEEP_CONFIGS as u64,
    );
    // Memory numbers ride the ns_per_iter field as plain counts, so the JSON
    // baseline records the retention story next to the throughput story.
    bench.record(
        "sweep_stream_peak_points",
        Duration::from_nanos(peak_points as u64),
        1,
    );
    bench.record(
        "sweep_materialized_points",
        Duration::from_nanos(materialized_points as u64),
        1,
    );

    let mut thread_counts = vec![2, 4, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    thread_counts.retain(|&t| t > 1);
    for threads in thread_counts {
        let parallel = sweep(&model, &configs, threads);
        let rate = SWEEP_CONFIGS as f64 / parallel.as_secs_f64();
        let name = format!("sweep_parallel_threads{threads}");
        println!(
            "{name:<28} {:>10}   {rate:>8.1} configs/sec   {:.2}x",
            format_duration(parallel),
            serial.as_secs_f64() / parallel.as_secs_f64()
        );
        bench.record(&name, parallel / SWEEP_CONFIGS as u32, SWEEP_CONFIGS as u64);
    }

    bench.finish();
}
