//! Architecture-level description of the design space evaluated in the AutoPower paper.
//!
//! This crate holds everything that is *visible at the architecture level* and therefore
//! shared by every other crate in the workspace:
//!
//! * [`HwParam`] / [`HardwareParams`] — the 14 hardware parameters of Table II,
//! * [`CpuConfig`] and [`boom_configs`] — the 15 BOOM configurations of Table II,
//! * [`DesignSpace`] — a parametric generator of arbitrarily many valid
//!   configurations beyond the 15 seeds (deterministic enumeration and seeded
//!   sampling),
//! * [`Component`] — the 22 components of Table III together with the hardware
//!   parameters each component is sensitive to,
//! * [`SramPosition`] and [`sram_positions`] — the SRAM Position catalogue used by the
//!   four-level SRAM hierarchy (Component → Position → Block → Macro),
//! * [`Workload`] — the eight riscv-tests workloads plus the two large trace workloads
//!   (GEMM, SPMM),
//! * [`seed`] — deterministic seeding helpers so that every synthetic quantity in the
//!   workspace is reproducible.
//!
//! # Example
//!
//! ```
//! use autopower_config::{boom_configs, Component, HwParam};
//!
//! let configs = boom_configs();
//! assert_eq!(configs.len(), 15);
//! let c1 = &configs[0];
//! assert_eq!(c1.params.value(HwParam::FetchWidth), 4);
//! // Every component lists the hardware parameters it depends on (Table III).
//! assert!(Component::Rob.hw_params().contains(&HwParam::RobEntry));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod configs;
mod params;
pub mod seed;
mod space;
mod sram;
mod workload;

pub use component::Component;
pub use configs::{boom_configs, config_by_id, ConfigId, CpuConfig, SEED_CONFIG_COUNT};
pub use params::{HardwareParams, HwParam};
pub use space::{Axis, DesignSpace, Enumerate};
pub use sram::{sram_positions, sram_positions_for, SramPosition, SramPositionId};
pub use workload::Workload;
