//! The 15 BOOM CPU configurations of Table II.

use crate::params::{HardwareParams, HwParam};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one of the 15 evaluated BOOM configurations (`C1` … `C15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConfigId(u8);

impl ConfigId {
    /// Creates a configuration identifier.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index <= 15`.
    pub fn new(index: u8) -> Self {
        assert!((1..=15).contains(&index), "config index must be in 1..=15");
        Self(index)
    }

    /// 1-based index of the configuration (the `N` of `CN`).
    pub fn index(self) -> u8 {
        self.0
    }

    /// All 15 identifiers in order.
    pub fn all() -> impl Iterator<Item = ConfigId> {
        (1..=15).map(ConfigId)
    }
}

impl fmt::Display for ConfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A named CPU configuration: an identifier plus its full hardware-parameter assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Identifier (`C1` … `C15` for the paper's design space).
    pub id: ConfigId,
    /// Hardware parameter values (one column of Table II).
    pub params: HardwareParams,
}

impl CpuConfig {
    /// Creates a configuration from an identifier and parameters.
    pub fn new(id: ConfigId, params: HardwareParams) -> Self {
        Self { id, params }
    }

    /// Convenience accessor mirroring [`HardwareParams::value`].
    pub fn value(&self, param: HwParam) -> u32 {
        self.params.value(param)
    }
}

impl fmt::Display for CpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Table II, transposed: one row per configuration, columns in [`HwParam::ALL`] order.
const TABLE_II: [[u32; 14]; 15] = [
    // Fetch Dec FBuf Rob IntPR FpPR LdqStq Br MemFp Int Way Dtlb Mshr IFB
    [4, 1, 5, 16, 36, 36, 4, 6, 1, 1, 2, 8, 2, 2], // C1
    [4, 1, 8, 32, 53, 48, 8, 8, 1, 1, 4, 8, 2, 2], // C2
    [4, 1, 16, 48, 68, 56, 16, 10, 1, 1, 8, 16, 4, 2], // C3
    [4, 2, 8, 64, 64, 56, 12, 10, 1, 1, 4, 8, 2, 2], // C4
    [4, 2, 16, 64, 80, 64, 16, 12, 1, 2, 4, 8, 2, 2], // C5
    [8, 2, 24, 80, 88, 72, 20, 14, 1, 2, 8, 16, 4, 4], // C6
    [8, 3, 18, 81, 88, 88, 16, 14, 1, 2, 8, 16, 4, 4], // C7
    [8, 3, 24, 96, 110, 96, 24, 16, 1, 3, 8, 16, 4, 4], // C8
    [8, 3, 30, 114, 112, 112, 32, 16, 2, 3, 8, 32, 4, 4], // C9
    [8, 4, 24, 112, 108, 108, 24, 18, 1, 4, 8, 32, 4, 4], // C10
    [8, 4, 32, 128, 128, 128, 32, 20, 2, 4, 8, 32, 4, 4], // C11
    [8, 4, 40, 136, 136, 136, 36, 20, 2, 4, 8, 32, 8, 4], // C12
    [8, 5, 30, 125, 108, 108, 24, 18, 2, 5, 8, 32, 8, 4], // C13
    [8, 5, 35, 130, 128, 128, 32, 20, 2, 5, 8, 32, 8, 4], // C14
    [8, 5, 40, 140, 140, 140, 36, 20, 2, 5, 8, 32, 8, 4], // C15
];

/// Returns the 15 BOOM configurations of Table II, ordered `C1` … `C15`.
///
/// # Example
///
/// ```
/// use autopower_config::{boom_configs, HwParam};
/// let cfgs = boom_configs();
/// assert_eq!(cfgs[14].value(HwParam::DecodeWidth), 5);
/// ```
pub fn boom_configs() -> Vec<CpuConfig> {
    TABLE_II
        .iter()
        .enumerate()
        .map(|(i, row)| CpuConfig::new(ConfigId::new(i as u8 + 1), HardwareParams::new(*row)))
        .collect()
}

/// Looks up a configuration by identifier.
pub fn config_by_id(id: ConfigId) -> CpuConfig {
    boom_configs()[(id.index() - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_configs_in_order() {
        let cfgs = boom_configs();
        assert_eq!(cfgs.len(), 15);
        for (i, c) in cfgs.iter().enumerate() {
            assert_eq!(c.id.index() as usize, i + 1);
        }
    }

    #[test]
    fn spot_check_against_table_ii() {
        let cfgs = boom_configs();
        // C1 column.
        assert_eq!(cfgs[0].value(HwParam::FetchWidth), 4);
        assert_eq!(cfgs[0].value(HwParam::RobEntry), 16);
        assert_eq!(cfgs[0].value(HwParam::BranchCount), 6);
        // C8 column.
        assert_eq!(cfgs[7].value(HwParam::DecodeWidth), 3);
        assert_eq!(cfgs[7].value(HwParam::IntPhyRegister), 110);
        assert_eq!(cfgs[7].value(HwParam::IntIssueWidth), 3);
        // C15 column.
        assert_eq!(cfgs[14].value(HwParam::FetchBufferEntry), 40);
        assert_eq!(cfgs[14].value(HwParam::RobEntry), 140);
        assert_eq!(cfgs[14].value(HwParam::MshrEntry), 8);
        assert_eq!(cfgs[14].value(HwParam::ICacheFetchBytes), 4);
    }

    #[test]
    fn parameters_are_non_decreasing_overall_scale() {
        // The design space is roughly ordered from small to large; the scale index of the
        // largest configuration must exceed that of the smallest.
        let cfgs = boom_configs();
        assert!(cfgs[14].params.scale_index() > cfgs[0].params.scale_index());
    }

    #[test]
    fn config_by_id_roundtrip() {
        for id in ConfigId::all() {
            assert_eq!(config_by_id(id).id, id);
        }
    }

    #[test]
    #[should_panic(expected = "1..=15")]
    fn config_id_out_of_range() {
        let _ = ConfigId::new(16);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ConfigId::new(3).to_string(), "C3");
        assert_eq!(config_by_id(ConfigId::new(12)).to_string(), "C12");
    }
}
