//! The 15 BOOM CPU configurations of Table II.

use crate::params::{HardwareParams, HwParam};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of seeded BOOM configurations (the columns of Table II).
pub const SEED_CONFIG_COUNT: u32 = 15;

/// Identifier of a CPU configuration.
///
/// The 15 seeded BOOM configurations of Table II are `C1` … `C15`
/// ([`ConfigId::new`]); configurations emitted by the design-space generator
/// ([`crate::DesignSpace`]) are `G1`, `G2`, … ([`ConfigId::generated`]) and live
/// in a disjoint identifier range, so a generated configuration can never be
/// mistaken for a seed.  Every deterministic seed in the workspace (synthesis
/// noise, simulator distortion) is derived from [`ConfigId::index`], which is
/// unique across both ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConfigId(u32);

impl ConfigId {
    /// Creates a seeded-configuration identifier (`C1` … `C15`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index <= 15`.
    pub fn new(index: u8) -> Self {
        assert!(
            (1..=SEED_CONFIG_COUNT as u8).contains(&index),
            "config index must be in 1..=15"
        );
        Self(u32::from(index))
    }

    /// Creates the identifier of the `n`-th generated (non-seed) configuration,
    /// 1-based: `generated(1)` is `G1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the identifier would overflow.
    pub fn generated(n: u32) -> Self {
        assert!(n > 0, "generated config numbering is 1-based");
        Self(
            SEED_CONFIG_COUNT
                .checked_add(n)
                .expect("generated config index overflow"),
        )
    }

    /// 1-based index of the configuration, unique across seeds and generated
    /// configurations (seeds occupy `1..=15`, `Gn` maps to `15 + n`).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Whether this identifies one of the 15 seeded Table II configurations.
    pub fn is_seed(self) -> bool {
        self.0 <= SEED_CONFIG_COUNT
    }

    /// The `n` of `Gn` for generated configurations, `None` for seeds.
    pub fn generated_index(self) -> Option<u32> {
        (!self.is_seed()).then(|| self.0 - SEED_CONFIG_COUNT)
    }

    /// All 15 seeded identifiers in order.
    pub fn all() -> impl Iterator<Item = ConfigId> {
        (1..=SEED_CONFIG_COUNT).map(ConfigId)
    }
}

impl fmt::Display for ConfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.generated_index() {
            Some(n) => write!(f, "G{n}"),
            None => write!(f, "C{}", self.0),
        }
    }
}

/// A named CPU configuration: an identifier plus its full hardware-parameter assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Identifier (`C1` … `C15` for the paper's design space).
    pub id: ConfigId,
    /// Hardware parameter values (one column of Table II).
    pub params: HardwareParams,
}

impl CpuConfig {
    /// Creates a configuration from an identifier and parameters.
    pub fn new(id: ConfigId, params: HardwareParams) -> Self {
        Self { id, params }
    }

    /// Convenience accessor mirroring [`HardwareParams::value`].
    pub fn value(&self, param: HwParam) -> u32 {
        self.params.value(param)
    }
}

impl fmt::Display for CpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Table II, transposed: one row per configuration, columns in [`HwParam::ALL`] order.
const TABLE_II: [[u32; 14]; 15] = [
    // Fetch Dec FBuf Rob IntPR FpPR LdqStq Br MemFp Int Way Dtlb Mshr IFB
    [4, 1, 5, 16, 36, 36, 4, 6, 1, 1, 2, 8, 2, 2], // C1
    [4, 1, 8, 32, 53, 48, 8, 8, 1, 1, 4, 8, 2, 2], // C2
    [4, 1, 16, 48, 68, 56, 16, 10, 1, 1, 8, 16, 4, 2], // C3
    [4, 2, 8, 64, 64, 56, 12, 10, 1, 1, 4, 8, 2, 2], // C4
    [4, 2, 16, 64, 80, 64, 16, 12, 1, 2, 4, 8, 2, 2], // C5
    [8, 2, 24, 80, 88, 72, 20, 14, 1, 2, 8, 16, 4, 4], // C6
    [8, 3, 18, 81, 88, 88, 16, 14, 1, 2, 8, 16, 4, 4], // C7
    [8, 3, 24, 96, 110, 96, 24, 16, 1, 3, 8, 16, 4, 4], // C8
    [8, 3, 30, 114, 112, 112, 32, 16, 2, 3, 8, 32, 4, 4], // C9
    [8, 4, 24, 112, 108, 108, 24, 18, 1, 4, 8, 32, 4, 4], // C10
    [8, 4, 32, 128, 128, 128, 32, 20, 2, 4, 8, 32, 4, 4], // C11
    [8, 4, 40, 136, 136, 136, 36, 20, 2, 4, 8, 32, 8, 4], // C12
    [8, 5, 30, 125, 108, 108, 24, 18, 2, 5, 8, 32, 8, 4], // C13
    [8, 5, 35, 130, 128, 128, 32, 20, 2, 5, 8, 32, 8, 4], // C14
    [8, 5, 40, 140, 140, 140, 36, 20, 2, 5, 8, 32, 8, 4], // C15
];

/// Returns the 15 BOOM configurations of Table II, ordered `C1` … `C15`.
///
/// # Example
///
/// ```
/// use autopower_config::{boom_configs, HwParam};
/// let cfgs = boom_configs();
/// assert_eq!(cfgs[14].value(HwParam::DecodeWidth), 5);
/// ```
pub fn boom_configs() -> Vec<CpuConfig> {
    TABLE_II
        .iter()
        .enumerate()
        .map(|(i, row)| CpuConfig::new(ConfigId::new(i as u8 + 1), HardwareParams::new(*row)))
        .collect()
}

/// Looks up a seeded configuration by identifier.
///
/// # Panics
///
/// Panics if `id` identifies a generated configuration — those carry their
/// parameters themselves (see [`crate::DesignSpace`]) and have no table entry.
pub fn config_by_id(id: ConfigId) -> CpuConfig {
    assert!(
        id.is_seed(),
        "{id} is not one of the 15 seeded configurations"
    );
    boom_configs()[(id.index() - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_configs_in_order() {
        let cfgs = boom_configs();
        assert_eq!(cfgs.len(), 15);
        for (i, c) in cfgs.iter().enumerate() {
            assert_eq!(c.id.index() as usize, i + 1);
        }
    }

    #[test]
    fn spot_check_against_table_ii() {
        let cfgs = boom_configs();
        // C1 column.
        assert_eq!(cfgs[0].value(HwParam::FetchWidth), 4);
        assert_eq!(cfgs[0].value(HwParam::RobEntry), 16);
        assert_eq!(cfgs[0].value(HwParam::BranchCount), 6);
        // C8 column.
        assert_eq!(cfgs[7].value(HwParam::DecodeWidth), 3);
        assert_eq!(cfgs[7].value(HwParam::IntPhyRegister), 110);
        assert_eq!(cfgs[7].value(HwParam::IntIssueWidth), 3);
        // C15 column.
        assert_eq!(cfgs[14].value(HwParam::FetchBufferEntry), 40);
        assert_eq!(cfgs[14].value(HwParam::RobEntry), 140);
        assert_eq!(cfgs[14].value(HwParam::MshrEntry), 8);
        assert_eq!(cfgs[14].value(HwParam::ICacheFetchBytes), 4);
    }

    #[test]
    fn parameters_are_non_decreasing_overall_scale() {
        // The design space is roughly ordered from small to large; the scale index of the
        // largest configuration must exceed that of the smallest.
        let cfgs = boom_configs();
        assert!(cfgs[14].params.scale_index() > cfgs[0].params.scale_index());
    }

    #[test]
    fn config_by_id_roundtrip() {
        for id in ConfigId::all() {
            assert_eq!(config_by_id(id).id, id);
        }
    }

    #[test]
    #[should_panic(expected = "1..=15")]
    fn config_id_out_of_range() {
        let _ = ConfigId::new(16);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ConfigId::new(3).to_string(), "C3");
        assert_eq!(config_by_id(ConfigId::new(12)).to_string(), "C12");
        assert_eq!(ConfigId::generated(7).to_string(), "G7");
    }

    #[test]
    fn generated_ids_are_disjoint_from_seeds() {
        let g1 = ConfigId::generated(1);
        assert!(!g1.is_seed());
        assert_eq!(g1.generated_index(), Some(1));
        assert_eq!(g1.index(), SEED_CONFIG_COUNT + 1);
        for seed in ConfigId::all() {
            assert!(seed.is_seed());
            assert_eq!(seed.generated_index(), None);
            assert_ne!(seed, g1);
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn generated_zero_rejected() {
        let _ = ConfigId::generated(0);
    }

    #[test]
    #[should_panic(expected = "not one of the 15 seeded")]
    fn config_by_id_rejects_generated_ids() {
        let _ = config_by_id(ConfigId::generated(3));
    }
}
