//! Deterministic seeding helpers.
//!
//! Every stochastic quantity in the workspace (synthetic instruction streams, synthesis
//! noise, simulator-inaccuracy distortion, GBDT subsampling) derives its seed from the
//! identities involved — configuration, workload, component, position — through the
//! functions in this module, so all experiments are bit-reproducible without any global
//! state.

/// One round of the splitmix64 output function.
///
/// Splitmix64 is a tiny, well-mixed 64-bit permutation; it is the standard way to expand
/// a small seed into independent streams.
///
/// # Example
///
/// ```
/// use autopower_config::seed::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two seeds into one, order-sensitively.
pub fn combine(a: u64, b: u64) -> u64 {
    splitmix64(a ^ splitmix64(b.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// Hashes an arbitrary byte string into a seed (FNV-1a followed by splitmix64).
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    splitmix64(h)
}

/// Deterministic standard-normal-ish sample derived from a seed.
///
/// Uses the sum of four uniform samples (Irwin–Hall) which is plenty for the mild
/// "synthesis noise" and "simulator inaccuracy" perturbations in the substrates; it is
/// bounded in `[-2, 2] * sqrt(3)` which conveniently avoids pathological outliers.
pub fn unit_normal(seed: u64) -> f64 {
    let mut acc = 0.0;
    let mut s = seed;
    for _ in 0..4 {
        s = splitmix64(s);
        acc += (s >> 11) as f64 / (1u64 << 53) as f64;
    }
    // Sum of 4 U(0,1): mean 2, variance 1/3. Standardise.
    (acc - 2.0) * (3.0f64).sqrt()
}

/// Deterministic uniform sample in `[0, 1)` derived from a seed.
pub fn unit_uniform(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// A small deterministic multiplicative perturbation `exp(sigma * N(0,1))`, centred
/// close to 1.0, used for synthesis/simulator noise factors.
pub fn lognormal_factor(seed: u64, sigma: f64) -> f64 {
    (sigma * unit_normal(seed)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(7), splitmix64(7));
        let a = splitmix64(7);
        let b = splitmix64(8);
        assert_ne!(a, b);
        // Consecutive seeds should differ in many bits.
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
        assert_eq!(combine(1, 2), combine(1, 2));
    }

    #[test]
    fn hash_str_distinguishes_names() {
        assert_ne!(hash_str("ftq_ghist"), hash_str("ftq_meta"));
        assert_eq!(hash_str("idata"), hash_str("idata"));
    }

    #[test]
    fn unit_uniform_in_range() {
        for s in 0..1000u64 {
            let u = unit_uniform(s);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_normal_has_roughly_zero_mean_and_unit_variance() {
        let n = 4000;
        let samples: Vec<f64> = (0..n).map(|i| unit_normal(i as u64)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn lognormal_factor_is_positive_and_near_one_for_small_sigma() {
        for s in 0..200u64 {
            let f = lognormal_factor(s, 0.05);
            assert!(f > 0.0);
            assert!((0.7..1.4).contains(&f), "factor {f}");
        }
    }
}
