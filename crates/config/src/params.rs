//! Hardware parameters (Table II of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the 14 architecture-level hardware parameters used in the paper (Table II).
///
/// The paper folds a few symmetric parameters into a single row (`LDQ/STQEntry`,
/// `Mem/FpIssueWidth`, `DCache/ICacheWay`); we keep the folded representation and expose
/// convenience accessors on [`HardwareParams`] for the individual views.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HwParam {
    /// Number of instructions fetched per cycle.
    FetchWidth,
    /// Number of instructions decoded/renamed per cycle.
    DecodeWidth,
    /// Entries in the fetch buffer between the IFU and the decode stage.
    FetchBufferEntry,
    /// Re-order buffer entries.
    RobEntry,
    /// Integer physical register file size.
    IntPhyRegister,
    /// Floating-point physical register file size.
    FpPhyRegister,
    /// Load-queue / store-queue entries (symmetric in the evaluated configurations).
    LdqStqEntry,
    /// Maximum number of in-flight branches.
    BranchCount,
    /// Memory / floating-point issue width (symmetric in the evaluated configurations).
    MemFpIssueWidth,
    /// Integer issue width.
    IntIssueWidth,
    /// Data-cache / instruction-cache associativity (symmetric in the evaluated configurations).
    CacheWay,
    /// Data TLB entries.
    DtlbEntry,
    /// Miss status holding register entries of the data cache.
    MshrEntry,
    /// Bytes fetched from the instruction cache per access.
    ICacheFetchBytes,
}

impl HwParam {
    /// All hardware parameters in the row order of Table II.
    pub const ALL: [HwParam; 14] = [
        HwParam::FetchWidth,
        HwParam::DecodeWidth,
        HwParam::FetchBufferEntry,
        HwParam::RobEntry,
        HwParam::IntPhyRegister,
        HwParam::FpPhyRegister,
        HwParam::LdqStqEntry,
        HwParam::BranchCount,
        HwParam::MemFpIssueWidth,
        HwParam::IntIssueWidth,
        HwParam::CacheWay,
        HwParam::DtlbEntry,
        HwParam::MshrEntry,
        HwParam::ICacheFetchBytes,
    ];

    /// Short, stable name used in feature vectors and printed tables.
    pub fn name(self) -> &'static str {
        match self {
            HwParam::FetchWidth => "FetchWidth",
            HwParam::DecodeWidth => "DecodeWidth",
            HwParam::FetchBufferEntry => "FetchBufferEntry",
            HwParam::RobEntry => "RobEntry",
            HwParam::IntPhyRegister => "IntPhyRegister",
            HwParam::FpPhyRegister => "FpPhyRegister",
            HwParam::LdqStqEntry => "LdqStqEntry",
            HwParam::BranchCount => "BranchCount",
            HwParam::MemFpIssueWidth => "MemFpIssueWidth",
            HwParam::IntIssueWidth => "IntIssueWidth",
            HwParam::CacheWay => "CacheWay",
            HwParam::DtlbEntry => "DtlbEntry",
            HwParam::MshrEntry => "MshrEntry",
            HwParam::ICacheFetchBytes => "ICacheFetchBytes",
        }
    }

    /// Stable index of the parameter in [`HwParam::ALL`].
    pub fn index(self) -> usize {
        HwParam::ALL
            .iter()
            .position(|p| *p == self)
            .expect("every parameter is listed in ALL")
    }
}

impl fmt::Display for HwParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete assignment of all 14 hardware parameters (one column of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HardwareParams {
    values: [u32; 14],
}

impl HardwareParams {
    /// Creates a parameter set from values given in the row order of Table II.
    ///
    /// # Panics
    ///
    /// Panics if any value is zero — all parameters of the evaluated design space are
    /// strictly positive.
    pub fn new(values: [u32; 14]) -> Self {
        assert!(
            values.iter().all(|&v| v > 0),
            "hardware parameters must be strictly positive"
        );
        Self { values }
    }

    /// Builds a parameter set from `(parameter, value)` pairs.
    ///
    /// Missing parameters default to the smallest configuration (C1) values, which makes
    /// the builder convenient for "what-if" exploration around a small baseline.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (HwParam, u32)>,
    {
        let mut base = crate::configs::boom_configs()[0].params;
        for (p, v) in pairs {
            base.set(p, v);
        }
        base
    }

    /// Value of a single hardware parameter.
    pub fn value(&self, param: HwParam) -> u32 {
        self.values[param.index()]
    }

    /// Sets a single hardware parameter.
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero.
    pub fn set(&mut self, param: HwParam, value: u32) {
        assert!(value > 0, "hardware parameters must be strictly positive");
        self.values[param.index()] = value;
    }

    /// All values in the row order of Table II.
    pub fn values(&self) -> &[u32; 14] {
        &self.values
    }

    /// Iterates over `(parameter, value)` pairs in Table II order.
    pub fn iter(&self) -> impl Iterator<Item = (HwParam, u32)> + '_ {
        HwParam::ALL.iter().map(move |&p| (p, self.value(p)))
    }

    /// Load-queue entries (alias of the folded `LDQ/STQEntry` row).
    pub fn ldq_entries(&self) -> u32 {
        self.value(HwParam::LdqStqEntry)
    }

    /// Store-queue entries (alias of the folded `LDQ/STQEntry` row).
    pub fn stq_entries(&self) -> u32 {
        self.value(HwParam::LdqStqEntry)
    }

    /// Memory issue width (alias of the folded `Mem/FpIssueWidth` row).
    pub fn mem_issue_width(&self) -> u32 {
        self.value(HwParam::MemFpIssueWidth)
    }

    /// Floating-point issue width (alias of the folded `Mem/FpIssueWidth` row).
    pub fn fp_issue_width(&self) -> u32 {
        self.value(HwParam::MemFpIssueWidth)
    }

    /// Instruction-cache associativity (alias of the folded `DCache/ICacheWay` row).
    pub fn icache_ways(&self) -> u32 {
        self.value(HwParam::CacheWay)
    }

    /// Data-cache associativity (alias of the folded `DCache/ICacheWay` row).
    pub fn dcache_ways(&self) -> u32 {
        self.value(HwParam::CacheWay)
    }

    /// Instruction TLB entries.
    ///
    /// Table II does not list a dedicated ITLB row; as in the BOOM configurations of the
    /// paper's artifact the ITLB tracks the DTLB sizing, so the DTLB entry count is used.
    pub fn itlb_entries(&self) -> u32 {
        self.value(HwParam::DtlbEntry)
    }

    /// A scalar proxy for the overall scale of the configuration, used by the synthetic
    /// substrates for "everything else" (wiring, glue logic) that grows with the core.
    ///
    /// It is the geometric-mean-like product of the width-class parameters; it is *not*
    /// used by the AutoPower model itself (which only sees the raw parameters).
    pub fn scale_index(&self) -> f64 {
        let d = self.value(HwParam::DecodeWidth) as f64;
        let f = self.value(HwParam::FetchWidth) as f64;
        let r = self.value(HwParam::RobEntry) as f64;
        let i = self.value(HwParam::IntIssueWidth) as f64;
        (d * f * i).powf(1.0 / 3.0) * (r / 16.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_indices_are_stable_and_unique() {
        for (i, p) in HwParam::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let mut names: Vec<_> = HwParam::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut p = HardwareParams::new([4, 1, 5, 16, 36, 36, 4, 6, 1, 1, 2, 8, 2, 2]);
        p.set(HwParam::RobEntry, 96);
        assert_eq!(p.value(HwParam::RobEntry), 96);
        assert_eq!(p.value(HwParam::FetchWidth), 4);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_parameter_rejected() {
        let _ = HardwareParams::new([0, 1, 5, 16, 36, 36, 4, 6, 1, 1, 2, 8, 2, 2]);
    }

    #[test]
    fn folded_aliases_agree() {
        let p = HardwareParams::new([8, 5, 40, 140, 140, 140, 36, 20, 2, 5, 8, 32, 8, 4]);
        assert_eq!(p.ldq_entries(), p.stq_entries());
        assert_eq!(p.mem_issue_width(), p.fp_issue_width());
        assert_eq!(p.icache_ways(), p.dcache_ways());
        assert_eq!(p.itlb_entries(), p.value(HwParam::DtlbEntry));
    }

    #[test]
    fn from_pairs_overrides_baseline() {
        let p = HardwareParams::from_pairs([(HwParam::DecodeWidth, 3), (HwParam::RobEntry, 96)]);
        assert_eq!(p.value(HwParam::DecodeWidth), 3);
        assert_eq!(p.value(HwParam::RobEntry), 96);
        // Untouched parameters come from C1.
        assert_eq!(p.value(HwParam::FetchWidth), 4);
    }

    #[test]
    fn scale_index_monotone_in_decode_width() {
        let small = HardwareParams::from_pairs([(HwParam::DecodeWidth, 1)]);
        let large = HardwareParams::from_pairs([(HwParam::DecodeWidth, 5)]);
        assert!(large.scale_index() > small.scale_index());
    }
}
