//! The SRAM Position catalogue.
//!
//! The SRAM hierarchy of the paper is `Component → SRAM Position → SRAM Block → SRAM
//! Macro`.  The *positions* (e.g. the `ghist` and `meta` structures of the fetch target
//! queue) are architecture-level facts: they exist for every configuration and their
//! identity is visible to the power model.  Their *blocks* (width/depth/count) are an RTL
//! fact produced by the synthesis substrate, and their *macros* a VLSI fact produced by
//! the technology library's mapping rule.

use crate::component::Component;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an SRAM Position: the owning component plus a stable short name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SramPositionId {
    /// Component the position belongs to.
    pub component: Component,
    /// Short name of the position inside its component (e.g. `"ghist"`).
    pub name: &'static str,
}

impl fmt::Display for SramPositionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.component, self.name)
    }
}

/// An SRAM Position: an architecture-visible SRAM-backed structure inside a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SramPosition {
    /// Identity of the position.
    pub id: SramPositionId,
    /// Number of write-mask sectors of the blocks implementing this position.
    ///
    /// A write that asserts only `k` of the `mask_sectors` sectors is counted as
    /// `k / mask_sectors` of "one write" when collecting block-level write frequencies
    /// (Section II-B of the paper).
    pub mask_sectors: u32,
    /// Human-readable description of the micro-architectural structure.
    pub description: &'static str,
}

impl SramPosition {
    const fn new(
        component: Component,
        name: &'static str,
        mask_sectors: u32,
        description: &'static str,
    ) -> Self {
        Self {
            id: SramPositionId { component, name },
            mask_sectors,
            description,
        }
    }
}

/// The full SRAM Position catalogue of the modelled BOOM core.
const CATALOGUE: &[SramPosition] = &[
    SramPosition::new(
        Component::BpTage,
        "tage_table",
        1,
        "tagged geometric-history predictor tables",
    ),
    SramPosition::new(
        Component::BpTage,
        "tage_meta",
        1,
        "usefulness / provider metadata of the TAGE tables",
    ),
    SramPosition::new(
        Component::BpBtb,
        "btb_data",
        2,
        "branch target buffer targets",
    ),
    SramPosition::new(Component::BpBtb, "btb_tag", 1, "branch target buffer tags"),
    SramPosition::new(
        Component::ICacheTagArray,
        "itag",
        1,
        "instruction-cache tag array",
    ),
    SramPosition::new(
        Component::ICacheDataArray,
        "idata",
        2,
        "instruction-cache data array",
    ),
    SramPosition::new(Component::DCacheTagArray, "dtag", 1, "data-cache tag array"),
    SramPosition::new(
        Component::DCacheDataArray,
        "ddata",
        4,
        "data-cache data array",
    ),
    SramPosition::new(
        Component::Rob,
        "rob_meta",
        1,
        "re-order buffer payload table",
    ),
    SramPosition::new(
        Component::Regfile,
        "int_rf",
        1,
        "integer physical register file banks",
    ),
    SramPosition::new(
        Component::Regfile,
        "fp_rf",
        1,
        "floating-point physical register file banks",
    ),
    SramPosition::new(
        Component::ITlb,
        "itlb_array",
        1,
        "instruction TLB entry array",
    ),
    SramPosition::new(Component::DTlb, "dtlb_array", 1, "data TLB entry array"),
    SramPosition::new(
        Component::DCacheMshr,
        "mshr_table",
        1,
        "miss status holding register payload table",
    ),
    SramPosition::new(Component::Lsu, "ldq_data", 2, "load queue payload"),
    SramPosition::new(
        Component::Lsu,
        "stq_data",
        2,
        "store queue data and address",
    ),
    SramPosition::new(
        Component::Ifu,
        "ftq_ghist",
        1,
        "fetch target queue global-history snapshots",
    ),
    SramPosition::new(
        Component::Ifu,
        "ftq_meta",
        1,
        "fetch target queue branch-prediction metadata",
    ),
    SramPosition::new(
        Component::Ifu,
        "fetch_buffer",
        2,
        "fetch buffer between the IFU and decode",
    ),
];

/// Returns the full SRAM Position catalogue (19 positions over 13 components).
///
/// # Example
///
/// ```
/// use autopower_config::{sram_positions, Component};
/// let idata: Vec<_> = sram_positions()
///     .iter()
///     .filter(|p| p.id.component == Component::ICacheDataArray)
///     .collect();
/// assert_eq!(idata.len(), 1);
/// ```
pub fn sram_positions() -> &'static [SramPosition] {
    CATALOGUE
}

/// Returns the SRAM Positions belonging to a single component (possibly empty).
pub fn sram_positions_for(component: Component) -> Vec<SramPosition> {
    CATALOGUE
        .iter()
        .copied()
        .filter(|p| p.id.component == component)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_nineteen_unique_positions() {
        assert_eq!(CATALOGUE.len(), 19);
        let mut ids: Vec<_> = CATALOGUE.iter().map(|p| p.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 19);
    }

    #[test]
    fn mask_sectors_are_positive() {
        for p in CATALOGUE {
            assert!(p.mask_sectors >= 1, "{} has zero mask sectors", p.id);
        }
    }

    #[test]
    fn ifu_has_the_paper_positions() {
        let names: Vec<_> = sram_positions_for(Component::Ifu)
            .iter()
            .map(|p| p.id.name)
            .collect();
        assert!(names.contains(&"ftq_ghist"));
        assert!(names.contains(&"ftq_meta"));
        assert!(names.contains(&"fetch_buffer"));
    }

    #[test]
    fn positions_only_on_sram_components() {
        for p in CATALOGUE {
            assert!(p.id.component.has_sram());
        }
        assert!(sram_positions_for(Component::FuPool).is_empty());
    }

    #[test]
    fn display_is_component_dot_name() {
        let p = sram_positions_for(Component::DCacheDataArray)[0];
        assert_eq!(p.id.to_string(), "DCacheDataArray.ddata");
    }
}
