//! Parametric design-space generation beyond the 15 seeded configurations.
//!
//! The paper's promise is that a model trained on a handful of *known*
//! configurations predicts the power of *unseen* ones — but the seeded design
//! space only has 15 points.  [`DesignSpace`] closes that gap: it spans a grid
//! over the architecturally independent hardware parameters (fetch/decode/issue
//! widths, ROB, cache/TLB/branch-predictor sizing), derives the dependent
//! parameters (physical register files, load/store queues, fetch buffer, fetch
//! bytes) from them the way the BOOM generator ties them together, and emits
//! only points that satisfy the validity constraints observed across Table II.
//!
//! Two emission modes are provided, both fully deterministic:
//!
//! * [`DesignSpace::enumerate`] walks the grid in lexicographic axis order and
//!   yields every valid point exactly once, and
//! * [`DesignSpace::sample`] draws a duplicate-free pseudo-random subset from a
//!   caller-provided seed (splitmix64 counter stream — no RNG state involved).
//!
//! Emitted configurations carry generated identifiers (`G1`, `G2`, …) that are
//! disjoint from the seed identifiers, and any point whose parameters coincide
//! with a seeded configuration is skipped, so callers can rely on every emitted
//! config being genuinely new.
//!
//! # Example
//!
//! ```
//! use autopower_config::DesignSpace;
//!
//! let space = DesignSpace::boom();
//! let configs = space.sample(100, 42);
//! assert_eq!(configs.len(), 100);
//! assert!(configs.iter().all(|c| !c.id.is_seed()));
//! assert!(configs.iter().all(|c| space.is_valid(&c.params)));
//! ```

use crate::configs::{boom_configs, ConfigId, CpuConfig};
use crate::params::{HardwareParams, HwParam};
use crate::seed;

/// One swept axis: a hardware parameter and the candidate values it may take.
#[derive(Debug, Clone)]
pub struct Axis {
    /// The swept hardware parameter.
    pub param: HwParam,
    /// Candidate values, in increasing order.
    pub values: Vec<u32>,
}

/// A parametric design space: swept axes plus derived parameters and validity
/// constraints.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    axes: Vec<Axis>,
}

/// The parameters swept as independent axes; everything else is derived.
const SWEPT: [HwParam; 9] = [
    HwParam::FetchWidth,
    HwParam::DecodeWidth,
    HwParam::RobEntry,
    HwParam::IntIssueWidth,
    HwParam::MemFpIssueWidth,
    HwParam::CacheWay,
    HwParam::DtlbEntry,
    HwParam::BranchCount,
    HwParam::MshrEntry,
];

impl DesignSpace {
    /// The default BOOM-like space: axis ranges covering (and extending between)
    /// the Table II columns.
    pub fn boom() -> Self {
        let values: [&[u32]; 9] = [
            &[4, 8],                                  // FetchWidth
            &[1, 2, 3, 4, 5],                         // DecodeWidth
            &[16, 32, 48, 64, 80, 96, 112, 128, 140], // RobEntry
            &[1, 2, 3, 4, 5],                         // IntIssueWidth
            &[1, 2],                                  // MemFpIssueWidth
            &[2, 4, 8],                               // CacheWay
            &[8, 16, 32],                             // DtlbEntry
            &[6, 8, 10, 12, 14, 16, 18, 20],          // BranchCount
            &[2, 4, 8],                               // MshrEntry
        ];
        Self {
            axes: SWEPT
                .iter()
                .zip(values)
                .map(|(&param, vals)| Axis {
                    param,
                    values: vals.to_vec(),
                })
                .collect(),
        }
    }

    /// Replaces the candidate values of one swept axis.
    ///
    /// # Panics
    ///
    /// Panics if `param` is not a swept axis (derived parameters cannot be
    /// overridden), if `values` is empty, or if any value is zero.
    pub fn with_axis(mut self, param: HwParam, values: Vec<u32>) -> Self {
        assert!(
            !values.is_empty(),
            "axis needs at least one candidate value"
        );
        assert!(
            values.iter().all(|&v| v > 0),
            "axis values must be positive"
        );
        let axis = self
            .axes
            .iter_mut()
            .find(|a| a.param == param)
            .unwrap_or_else(|| panic!("{param} is a derived parameter, not a swept axis"));
        axis.values = values;
        self
    }

    /// The swept axes.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of raw grid points (before validity filtering).
    pub fn raw_size(&self) -> u64 {
        self.axes.iter().map(|a| a.values.len() as u64).product()
    }

    /// Whether a full parameter assignment satisfies the space's validity
    /// constraints (all of which hold for every Table II column):
    ///
    /// * `DecodeWidth <= FetchWidth`,
    /// * `IntIssueWidth <= DecodeWidth` and `MemFpIssueWidth <= IntIssueWidth`,
    /// * `RobEntry >= 16 * DecodeWidth` (enough in-flight instructions to feed
    ///   the width),
    /// * `FetchBufferEntry >= FetchWidth` and divisible by `DecodeWidth`,
    /// * `BranchCount >= 2 * DecodeWidth` (room for the branches a wide decode
    ///   exposes),
    /// * `LdqStqEntry >= 4`.
    pub fn is_valid(&self, p: &HardwareParams) -> bool {
        let fetch = p.value(HwParam::FetchWidth);
        let decode = p.value(HwParam::DecodeWidth);
        let int_issue = p.value(HwParam::IntIssueWidth);
        let memfp_issue = p.value(HwParam::MemFpIssueWidth);
        let rob = p.value(HwParam::RobEntry);
        let fbuf = p.value(HwParam::FetchBufferEntry);
        decode <= fetch
            && int_issue <= decode
            && memfp_issue <= int_issue
            && rob >= 16 * decode
            && fbuf >= fetch
            && fbuf.is_multiple_of(decode)
            && p.value(HwParam::BranchCount) >= 2 * decode
            && p.value(HwParam::LdqStqEntry) >= 4
    }

    /// The full parameter assignment of the raw grid point with mixed-radix
    /// index `k` (axis order, last axis fastest).
    fn params_at(&self, mut k: u64) -> HardwareParams {
        let mut swept = [0u32; SWEPT.len()];
        for (slot, axis) in swept.iter_mut().zip(&self.axes).rev() {
            let radix = axis.values.len() as u64;
            *slot = axis.values[(k % radix) as usize];
            k /= radix;
        }
        let [fetch, decode, rob, int_issue, memfp_issue, way, dtlb, branch, mshr] = swept;
        // Dependent parameters, tied to the independent ones the way the BOOM
        // generator sizes them: the fetch buffer holds a few groups per decode
        // lane (always a multiple of DecodeWidth), the physical register files
        // track the ROB within the Table II envelope, the load/store queues are
        // a quarter of the ROB, and the fetch bytes scale with the fetch width.
        let fbuf = 8 * decode;
        let phys = (rob + 4).clamp(36, 140);
        let ldq = (rob / 4).max(4);
        let fetch_bytes = fetch / 2;
        HardwareParams::new([
            fetch,
            decode,
            fbuf,
            rob,
            phys,
            phys,
            ldq,
            branch,
            memfp_issue,
            int_issue,
            way,
            dtlb,
            mshr,
            fetch_bytes,
        ])
    }

    /// Exact number of configurations [`DesignSpace::enumerate`] yields: the
    /// valid, non-seed grid points.
    ///
    /// Counted by walking the raw grid (validity does not factorize cleanly
    /// across axes once seed exclusion enters), so this costs one pass over
    /// `raw_size()` cheap parameter derivations — milliseconds for the default
    /// BOOM space — and is guaranteed to agree with the enumerator by
    /// construction.
    pub fn total(&self) -> u64 {
        let seeds = seed_params();
        (0..self.raw_size())
            .filter(|&k| {
                let p = self.params_at(k);
                self.is_valid(&p) && !seeds.contains(&p)
            })
            .count() as u64
    }

    /// Enumerates every valid, non-seed grid point in deterministic
    /// lexicographic axis order, assigning generated identifiers (`G1`, `G2`,
    /// …) in emission order.
    pub fn enumerate(&self) -> Enumerate<'_> {
        Enumerate {
            space: self,
            seeds: seed_params(),
            next_raw: 0,
            emitted: 0,
        }
    }

    /// One deterministic chunk of the enumeration: the `len` configurations
    /// starting at enumeration offset `offset` (identifiers `G(offset+1)`
    /// onward), exactly as a full [`DesignSpace::enumerate`] would emit them.
    /// Returns fewer than `len` configurations when the space runs out.
    ///
    /// Chunks are independent of one another — `enumerate_chunk(0, n)` followed
    /// by `enumerate_chunk(n, m)` concatenates to `enumerate().take(n + m)` —
    /// which is what lets a streaming sweep resume mid-space from a persisted
    /// offset cursor.  Seeking costs a scan of the raw grid up to the offset.
    pub fn enumerate_chunk(&self, offset: u64, len: usize) -> Vec<CpuConfig> {
        let offset = usize::try_from(offset).expect("enumeration offset exceeds address space");
        self.enumerate().skip(offset).take(len).collect()
    }

    /// Draws `count` distinct valid, non-seed configurations from a seeded,
    /// stateless pseudo-random stream.  The result is a pure function of
    /// `(self, count, sample_seed)` — independent of call order, thread count
    /// or global state — and identifiers are assigned `G1..=Gcount` in draw
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the space does not contain `count` distinct valid points
    /// (detected after a bounded number of rejected draws).
    pub fn sample(&self, count: usize, sample_seed: u64) -> Vec<CpuConfig> {
        // Seeds pre-populate the taken set so seeded points are rejected like
        // duplicates; the set keeps duplicate detection O(1) per draw.
        let mut taken: std::collections::HashSet<HardwareParams> =
            seed_params().into_iter().collect();
        let mut configs = Vec::with_capacity(count);
        // A generous rejection budget: the boom() space keeps well over 10 % of
        // its raw grid, so running out means the caller over-constrained the
        // axes relative to `count`.
        let max_attempts = (count as u64 + 16).saturating_mul(1_000);
        let mut attempt: u64 = 0;
        while configs.len() < count {
            assert!(
                attempt < max_attempts,
                "design space too small for {count} distinct configurations"
            );
            let draw = seed::splitmix64(seed::combine(sample_seed, attempt));
            attempt += 1;
            let k = draw % self.raw_size();
            let params = self.params_at(k);
            if !self.is_valid(&params) || !taken.insert(params) {
                continue;
            }
            configs.push(CpuConfig::new(
                ConfigId::generated(configs.len() as u32 + 1),
                params,
            ));
        }
        configs
    }
}

/// Lazy enumerator over the valid, non-seed points of a [`DesignSpace`], in
/// deterministic lexicographic axis order (see [`DesignSpace::enumerate`]).
#[derive(Debug, Clone)]
pub struct Enumerate<'a> {
    space: &'a DesignSpace,
    seeds: Vec<HardwareParams>,
    next_raw: u64,
    emitted: u32,
}

impl Iterator for Enumerate<'_> {
    type Item = CpuConfig;

    fn next(&mut self) -> Option<CpuConfig> {
        while self.next_raw < self.space.raw_size() {
            let params = self.space.params_at(self.next_raw);
            self.next_raw += 1;
            if self.space.is_valid(&params) && !self.seeds.contains(&params) {
                self.emitted += 1;
                return Some(CpuConfig::new(ConfigId::generated(self.emitted), params));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Every remaining raw grid point is at most one emitted configuration;
        // validity filtering can only shrink that, so the cheap exact upper
        // bound is the unvisited raw-grid remainder and the lower bound is 0.
        let remaining_raw = self.space.raw_size() - self.next_raw;
        (
            0,
            Some(usize::try_from(remaining_raw).unwrap_or(usize::MAX)),
        )
    }
}

/// Parameter assignments of the 15 seeded configurations (for duplicate
/// exclusion).
fn seed_params() -> Vec<HardwareParams> {
    boom_configs().iter().map(|c| c.params).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_satisfy_the_validity_constraints() {
        // The constraints are distilled from Table II, so every seeded column
        // must pass them.
        let space = DesignSpace::boom();
        for cfg in boom_configs() {
            assert!(
                space.is_valid(&cfg.params),
                "{} violates constraints",
                cfg.id
            );
        }
    }

    #[test]
    fn enumeration_yields_valid_distinct_non_seed_points() {
        let space = DesignSpace::boom();
        let some: Vec<CpuConfig> = space.enumerate().take(500).collect();
        assert_eq!(some.len(), 500);
        let seeds = seed_params();
        for (i, cfg) in some.iter().enumerate() {
            assert_eq!(cfg.id, ConfigId::generated(i as u32 + 1));
            assert!(space.is_valid(&cfg.params));
            assert!(!seeds.contains(&cfg.params));
        }
        let mut params: Vec<_> = some.iter().map(|c| *c.params.values()).collect();
        params.sort_unstable();
        params.dedup();
        assert_eq!(params.len(), 500, "enumeration emitted a duplicate point");
    }

    #[test]
    fn total_counts_exactly_what_enumerate_yields() {
        let space = DesignSpace::boom();
        let total = space.total();
        assert!(total > 0);
        assert_eq!(total, space.enumerate().count() as u64);
    }

    #[test]
    fn size_hint_brackets_the_true_remaining_count() {
        let space = DesignSpace::boom().with_axis(HwParam::CacheWay, vec![4]);
        let mut it = space.enumerate();
        let truth = it.clone().count();
        for step in 0..200 {
            let remaining = truth - step;
            let (lo, hi) = it.size_hint();
            assert!(lo <= remaining, "lower bound overshot at step {step}");
            assert!(
                hi.expect("finite grid has a finite upper bound") >= remaining,
                "upper bound undershot at step {step}"
            );
            assert!(it.next().is_some());
        }
    }

    #[test]
    fn chunked_enumeration_concatenates_to_the_full_walk() {
        let space = DesignSpace::boom()
            .with_axis(HwParam::CacheWay, vec![2])
            .with_axis(HwParam::DtlbEntry, vec![8])
            .with_axis(HwParam::MshrEntry, vec![2]);
        let full: Vec<CpuConfig> = space.enumerate().collect();
        assert_eq!(full.len() as u64, space.total());
        let mut stitched = Vec::new();
        let mut offset = 0u64;
        loop {
            let chunk = space.enumerate_chunk(offset, 97);
            if chunk.is_empty() {
                break;
            }
            offset += chunk.len() as u64;
            stitched.extend(chunk);
        }
        assert_eq!(stitched, full);
        // Chunks carry the identifiers of their global enumeration position.
        let tail = space.enumerate_chunk(5, 3);
        assert_eq!(tail[0].id, ConfigId::generated(6));
        assert_eq!(tail[2].id, ConfigId::generated(8));
        // Seeking past the end yields nothing.
        assert!(space.enumerate_chunk(space.total(), 4).is_empty());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let space = DesignSpace::boom();
        let a = space.sample(64, 7);
        let b = space.sample(64, 7);
        assert_eq!(a, b);
        let c = space.sample(64, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn with_axis_overrides_and_rejects_derived_params() {
        let space = DesignSpace::boom().with_axis(HwParam::FetchWidth, vec![8]);
        assert!(space
            .enumerate()
            .take(100)
            .all(|c| c.value(HwParam::FetchWidth) == 8));
    }

    #[test]
    #[should_panic(expected = "derived parameter")]
    fn derived_axis_override_panics() {
        let _ = DesignSpace::boom().with_axis(HwParam::IntPhyRegister, vec![64]);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn oversampling_a_tiny_space_panics() {
        // One point per axis: at most one valid configuration exists.
        let mut space = DesignSpace::boom();
        for axis in SWEPT {
            let first = space
                .axes()
                .iter()
                .find(|a| a.param == axis)
                .unwrap()
                .values[0];
            space = space.with_axis(axis, vec![first]);
        }
        let _ = space.sample(10, 0);
    }
}
