//! Workload identifiers: the eight riscv-tests benchmarks plus the two large
//! trace-prediction workloads (GEMM, SPMM).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the workloads used in the paper's evaluation.
///
/// The eight small workloads come from the riscv-tests benchmark suite and are used for
/// the average-power experiments (Figs. 4–8).  GEMM and SPMM are the two large
/// million-cycle workloads used for time-based power-trace prediction (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Workload {
    /// Dhrystone integer synthetic benchmark.
    Dhrystone,
    /// Median filter over an integer vector.
    Median,
    /// Software multiply kernel.
    Multiply,
    /// Quicksort over an integer array.
    Qsort,
    /// Radix sort over an integer array.
    Rsort,
    /// Towers of Hanoi (recursive, branchy).
    Towers,
    /// Sparse matrix-vector multiplication.
    Spmv,
    /// Dense vector-vector addition.
    Vvadd,
    /// Dense matrix-matrix multiplication (large, phased; trace prediction).
    Gemm,
    /// Sparse matrix-matrix multiplication (large, phased; trace prediction).
    Spmm,
}

impl Workload {
    /// The eight riscv-tests workloads used for the average-power experiments.
    pub const RISCV_TESTS: [Workload; 8] = [
        Workload::Dhrystone,
        Workload::Median,
        Workload::Multiply,
        Workload::Qsort,
        Workload::Rsort,
        Workload::Towers,
        Workload::Spmv,
        Workload::Vvadd,
    ];

    /// The two large workloads used for time-based power-trace prediction (Table IV).
    pub const TRACE_WORKLOADS: [Workload; 2] = [Workload::Gemm, Workload::Spmm];

    /// All ten workloads.
    pub const ALL: [Workload; 10] = [
        Workload::Dhrystone,
        Workload::Median,
        Workload::Multiply,
        Workload::Qsort,
        Workload::Rsort,
        Workload::Towers,
        Workload::Spmv,
        Workload::Vvadd,
        Workload::Gemm,
        Workload::Spmm,
    ];

    /// Short, stable lowercase name (matches the riscv-tests binary names).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Dhrystone => "dhrystone",
            Workload::Median => "median",
            Workload::Multiply => "multiply",
            Workload::Qsort => "qsort",
            Workload::Rsort => "rsort",
            Workload::Towers => "towers",
            Workload::Spmv => "spmv",
            Workload::Vvadd => "vvadd",
            Workload::Gemm => "gemm",
            Workload::Spmm => "spmm",
        }
    }

    /// Stable index of the workload in [`Workload::ALL`].
    pub fn index(self) -> usize {
        Workload::ALL
            .iter()
            .position(|w| *w == self)
            .expect("every workload is listed in ALL")
    }

    /// Whether this is one of the two large trace-prediction workloads.
    pub fn is_trace_workload(self) -> bool {
        matches!(self, Workload::Gemm | Workload::Spmm)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sets_are_consistent() {
        assert_eq!(Workload::RISCV_TESTS.len(), 8);
        assert_eq!(Workload::TRACE_WORKLOADS.len(), 2);
        assert_eq!(Workload::ALL.len(), 10);
        for w in Workload::RISCV_TESTS {
            assert!(!w.is_trace_workload());
        }
        for w in Workload::TRACE_WORKLOADS {
            assert!(w.is_trace_workload());
        }
    }

    #[test]
    fn names_are_unique_and_lowercase() {
        let mut names: Vec<_> = Workload::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
        for n in names {
            assert_eq!(n, n.to_lowercase());
        }
    }

    #[test]
    fn indices_are_stable() {
        for (i, w) in Workload::ALL.iter().enumerate() {
            assert_eq!(w.index(), i);
        }
    }
}
