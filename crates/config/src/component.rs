//! The 22 design components of Table III and their hardware-parameter sensitivity lists.

use crate::params::HwParam;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the 22 components the paper decomposes the BOOM core into (Table III).
///
/// Each component carries the list of architecture-level hardware parameters it is
/// sensitive to ([`Component::hw_params`]); this is the `H` feature set of its
/// per-component sub-models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Component {
    /// TAGE predictor tables of the branch predictor.
    BpTage,
    /// Branch target buffer of the branch predictor.
    BpBtb,
    /// Remaining branch-predictor logic (RAS, meta, checkpointing).
    BpOthers,
    /// Instruction-cache tag array.
    ICacheTagArray,
    /// Instruction-cache data array.
    ICacheDataArray,
    /// Remaining instruction-cache logic (replay, fill, arbitration).
    ICacheOthers,
    /// Rename unit.
    Rnu,
    /// Re-order buffer.
    Rob,
    /// Integer + floating-point physical register files.
    Regfile,
    /// Data-cache tag array.
    DCacheTagArray,
    /// Data-cache data array.
    DCacheDataArray,
    /// Remaining data-cache logic (wb buffer, prober, arbitration).
    DCacheOthers,
    /// Floating-point issue unit.
    FpIsu,
    /// Integer issue unit.
    IntIsu,
    /// Memory issue unit.
    MemIsu,
    /// Instruction TLB.
    ITlb,
    /// Data TLB.
    DTlb,
    /// Functional-unit pool (ALUs, FPUs, AGUs).
    FuPool,
    /// Everything not covered by the other components (buses, CSRs, glue logic).
    OtherLogic,
    /// Data-cache miss status holding registers.
    DCacheMshr,
    /// Load/store unit (load queue, store queue, forwarding).
    Lsu,
    /// Instruction fetch unit (fetch buffer, fetch target queue).
    Ifu,
}

impl Component {
    /// All 22 components in a stable order.
    pub const ALL: [Component; 22] = [
        Component::BpTage,
        Component::BpBtb,
        Component::BpOthers,
        Component::ICacheTagArray,
        Component::ICacheDataArray,
        Component::ICacheOthers,
        Component::Rnu,
        Component::Rob,
        Component::Regfile,
        Component::DCacheTagArray,
        Component::DCacheDataArray,
        Component::DCacheOthers,
        Component::FpIsu,
        Component::IntIsu,
        Component::MemIsu,
        Component::ITlb,
        Component::DTlb,
        Component::FuPool,
        Component::OtherLogic,
        Component::DCacheMshr,
        Component::Lsu,
        Component::Ifu,
    ];

    /// Short, stable name used in printed tables and feature names.
    pub fn name(self) -> &'static str {
        match self {
            Component::BpTage => "BP-TAGE",
            Component::BpBtb => "BP-BTB",
            Component::BpOthers => "BP-Others",
            Component::ICacheTagArray => "ICacheTagArray",
            Component::ICacheDataArray => "ICacheDataArray",
            Component::ICacheOthers => "ICacheOthers",
            Component::Rnu => "RNU",
            Component::Rob => "ROB",
            Component::Regfile => "Regfile",
            Component::DCacheTagArray => "DCacheTagArray",
            Component::DCacheDataArray => "DCacheDataArray",
            Component::DCacheOthers => "DCacheOthers",
            Component::FpIsu => "FP-ISU",
            Component::IntIsu => "Int-ISU",
            Component::MemIsu => "Mem-ISU",
            Component::ITlb => "I-TLB",
            Component::DTlb => "D-TLB",
            Component::FuPool => "FU-Pool",
            Component::OtherLogic => "OtherLogic",
            Component::DCacheMshr => "DCacheMSHR",
            Component::Lsu => "LSU",
            Component::Ifu => "IFU",
        }
    }

    /// Stable index of the component in [`Component::ALL`].
    pub fn index(self) -> usize {
        Component::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every component is listed in ALL")
    }

    /// The hardware parameters this component is sensitive to (Table III).
    ///
    /// These are the `H` features of all per-component sub-models; the netlist substrate
    /// also uses them as the drivers of the component's synthesized structure.
    pub fn hw_params(self) -> &'static [HwParam] {
        use HwParam::*;
        match self {
            Component::BpTage | Component::BpBtb | Component::BpOthers => {
                &[FetchWidth, BranchCount]
            }
            Component::ICacheTagArray | Component::ICacheDataArray | Component::ICacheOthers => {
                &[CacheWay, ICacheFetchBytes]
            }
            Component::Rnu => &[DecodeWidth],
            Component::Rob => &[DecodeWidth, RobEntry],
            Component::Regfile => &[DecodeWidth, IntPhyRegister, FpPhyRegister],
            Component::DCacheTagArray | Component::DCacheOthers => {
                &[CacheWay, MemFpIssueWidth, DtlbEntry]
            }
            Component::DCacheDataArray => &[CacheWay, MemFpIssueWidth],
            Component::FpIsu => &[DecodeWidth, MemFpIssueWidth],
            Component::IntIsu => &[DecodeWidth, IntIssueWidth],
            Component::MemIsu => &[DecodeWidth, MemFpIssueWidth],
            Component::ITlb => &[DtlbEntry],
            Component::DTlb => &[DtlbEntry],
            Component::FuPool => &[MemFpIssueWidth, IntIssueWidth],
            Component::OtherLogic => &HwParam::ALL,
            Component::DCacheMshr => &[MshrEntry],
            Component::Lsu => &[LdqStqEntry, MemFpIssueWidth],
            Component::Ifu => &[FetchWidth, DecodeWidth, FetchBufferEntry],
        }
    }

    /// Whether the component contains at least one SRAM Position.
    pub fn has_sram(self) -> bool {
        !crate::sram::sram_positions_for(self).is_empty()
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_components_with_unique_names() {
        assert_eq!(Component::ALL.len(), 22);
        let mut names: Vec<_> = Component::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn indices_are_stable() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn every_component_has_at_least_one_hw_param() {
        for c in Component::ALL {
            assert!(!c.hw_params().is_empty(), "{c} has no hardware parameters");
        }
    }

    #[test]
    fn table_iii_spot_checks() {
        assert_eq!(
            Component::Ifu.hw_params(),
            &[
                HwParam::FetchWidth,
                HwParam::DecodeWidth,
                HwParam::FetchBufferEntry
            ]
        );
        assert_eq!(
            Component::Regfile.hw_params(),
            &[
                HwParam::DecodeWidth,
                HwParam::IntPhyRegister,
                HwParam::FpPhyRegister
            ]
        );
        assert_eq!(Component::DCacheMshr.hw_params(), &[HwParam::MshrEntry]);
        assert_eq!(Component::OtherLogic.hw_params().len(), 14);
    }

    #[test]
    fn sram_bearing_components_marked() {
        assert!(Component::ICacheDataArray.has_sram());
        assert!(Component::Ifu.has_sram());
        assert!(!Component::FuPool.has_sram());
        assert!(!Component::OtherLogic.has_sram());
    }
}
