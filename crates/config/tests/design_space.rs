//! Property tests of the design-space generator: every emitted configuration
//! is valid, non-seed and duplicate-free, and both emission modes are
//! deterministic functions of their inputs.

use autopower_config::{boom_configs, DesignSpace, HardwareParams, HwParam};
use proptest::prelude::*;

/// Collects the parameter vectors of the 15 seeded configurations.
fn seed_param_sets() -> Vec<HardwareParams> {
    boom_configs().iter().map(|c| c.params).collect()
}

/// Asserts the invariants every emitted configuration must satisfy.
fn check_emitted(
    space: &DesignSpace,
    configs: &[autopower_config::CpuConfig],
) -> Result<(), proptest::TestCaseError> {
    let seeds = seed_param_sets();
    let mut seen: Vec<[u32; 14]> = Vec::with_capacity(configs.len());
    for (i, cfg) in configs.iter().enumerate() {
        prop_assert!(
            space.is_valid(&cfg.params),
            "config {} violates the validity constraints",
            cfg.id
        );
        prop_assert!(!cfg.id.is_seed(), "{} reuses a seed identifier", cfg.id);
        prop_assert_eq!(cfg.id.generated_index(), Some(i as u32 + 1));
        prop_assert!(
            !seeds.contains(&cfg.params),
            "{} duplicates a seeded configuration",
            cfg.id
        );
        prop_assert!(
            !seen.contains(cfg.params.values()),
            "{} duplicates an earlier generated point",
            cfg.id
        );
        seen.push(*cfg.params.values());
        // Spot-check the structural constraints directly, independent of
        // is_valid, so a bug in the validity predicate itself cannot hide one
        // in the emitter.
        prop_assert!(cfg.value(HwParam::DecodeWidth) <= cfg.value(HwParam::FetchWidth));
        prop_assert!(cfg.value(HwParam::IntIssueWidth) <= cfg.value(HwParam::DecodeWidth));
        prop_assert!(cfg.value(HwParam::RobEntry) >= 16 * cfg.value(HwParam::DecodeWidth));
        prop_assert!(cfg
            .value(HwParam::FetchBufferEntry)
            .is_multiple_of(cfg.value(HwParam::DecodeWidth)));
    }
    Ok(())
}

proptest! {
    /// Seeded sampling emits exactly `count` valid, distinct, non-seed
    /// configurations and is a pure function of `(count, seed)`.
    #[test]
    fn sampling_is_valid_duplicate_free_and_deterministic(
        count in 1usize..40,
        sample_seed in 0u64..1_000_000,
    ) {
        let space = DesignSpace::boom();
        let configs = space.sample(count, sample_seed);
        prop_assert_eq!(configs.len(), count);
        check_emitted(&space, &configs)?;
        prop_assert_eq!(space.sample(count, sample_seed), configs);
    }

    /// Enumeration is deterministic, duplicate-free and valid over arbitrary
    /// prefixes, and a shorter prefix is always a prefix of a longer one.
    #[test]
    fn enumeration_is_valid_and_deterministic(take in 1usize..300) {
        let space = DesignSpace::boom();
        let configs: Vec<_> = space.enumerate().take(take).collect();
        prop_assert_eq!(configs.len(), take);
        check_emitted(&space, &configs)?;
        let again: Vec<_> = space.enumerate().take(take).collect();
        prop_assert_eq!(&again, &configs);
        let shorter: Vec<_> = space.enumerate().take(take / 2).collect();
        prop_assert_eq!(&configs[..take / 2], &shorter[..]);
    }

    /// `total()` is exactly `enumerate().count()` on folded/constrained
    /// spaces, `size_hint` brackets the true count throughout the walk, and
    /// chunked enumeration stitches back into the full walk bit-for-bit.
    #[test]
    fn total_size_hint_and_chunks_agree_with_enumeration(
        rob_len in 1usize..5,
        decode_len in 1usize..4,
        branch_len in 1usize..4,
        chunk_len in 1usize..50,
        offset in 0u64..400,
    ) {
        // Fold three axes to random prefixes so the constraint interactions
        // (rob >= 16*decode, branch >= 2*decode) actually bite.
        let boom = DesignSpace::boom();
        let prefix = |param: HwParam, len: usize| {
            let axis = boom.axes().iter().find(|a| a.param == param).unwrap();
            axis.values[..len.min(axis.values.len())].to_vec()
        };
        let space = DesignSpace::boom()
            .with_axis(HwParam::RobEntry, prefix(HwParam::RobEntry, rob_len))
            .with_axis(HwParam::DecodeWidth, prefix(HwParam::DecodeWidth, decode_len))
            .with_axis(HwParam::BranchCount, prefix(HwParam::BranchCount, branch_len));

        let full: Vec<_> = space.enumerate().collect();
        prop_assert_eq!(space.total(), full.len() as u64);

        // size_hint stays a valid bracket at the start, middle and end.
        let mut it = space.enumerate();
        let mut remaining = full.len();
        loop {
            let (lo, hi) = it.size_hint();
            prop_assert!(lo <= remaining);
            prop_assert!(hi.unwrap() >= remaining);
            if it.next().is_none() {
                prop_assert_eq!(remaining, 0);
                break;
            }
            remaining -= 1;
        }

        // An arbitrary chunk is the matching slice of the full walk,
        // identifiers included.
        let chunk = space.enumerate_chunk(offset, chunk_len);
        let start = (offset as usize).min(full.len());
        let end = (start + chunk_len).min(full.len());
        prop_assert_eq!(&chunk[..], &full[start..end]);
    }

    /// Different sample seeds explore different corners of the space (no seed
    /// aliasing): two draws of the same size share at most half their points.
    #[test]
    fn different_seeds_draw_different_points(sample_seed in 0u64..100_000) {
        let space = DesignSpace::boom();
        let a = space.sample(16, sample_seed);
        let b = space.sample(16, sample_seed.wrapping_add(1));
        let shared = a
            .iter()
            .filter(|c| b.iter().any(|d| d.params == c.params))
            .count();
        prop_assert!(shared <= 8, "{shared} of 16 points shared between adjacent seeds");
    }
}
