//! Driving the substrate layers directly: a custom workload through the raw pipeline,
//! golden power evaluation, and a what-if study on the SRAM macro mapping.
//!
//! The other examples stay at the `autopower` API level; this one shows the individual
//! substrate crates (workloads, perfsim, netlist, techlib, powersim) being composed by
//! hand, which is what a user would do to model a component or workload that is not part
//! of the shipped catalogue.
//!
//! Run with `cargo run --release --example custom_component`.

use autopower_config::{boom_configs, Component, Workload};
use autopower_netlist::synthesize;
use autopower_perfsim::{derive_activity, Pipeline};
use autopower_powersim::evaluate;
use autopower_techlib::TechLibrary;
use autopower_workloads::{profile, InstrMix, Phase, StreamGenerator, WorkloadProfile};

fn main() {
    let library = TechLibrary::tsmc40_like();
    let config = boom_configs()[7]; // C8, a mid-size core

    // 1. Define a custom workload profile: a pointer-chasing kernel with a large
    //    irregular working set and very low instruction-level parallelism.
    let pointer_chase = WorkloadProfile {
        phases: vec![Phase {
            weight: 1.0,
            mix: InstrMix::new(0.38, 0.0, 0.0, 0.40, 0.04, 0.18),
            data_working_set: 512 * 1024,
            code_working_set: 2 * 1024,
            branch_irregularity: 0.45,
            ilp: 1.3,
            streaming_fraction: 0.05,
        }],
        nominal_instructions: 60_000,
        // Reuse an existing workload id for labelling; the profile is what matters here.
        workload: Workload::Spmv,
        footprint_pages: 160,
    };

    // 2. Run the cycle-level pipeline on the custom instruction stream.
    let stream = StreamGenerator::with_profile(pointer_chase, 7);
    let mut pipeline = Pipeline::new(config, stream);
    pipeline.run(60_000);
    let counters = *pipeline.counters();
    println!(
        "custom pointer-chasing kernel on {}: IPC {:.2}, dcache miss rate {:.1}%",
        config.id,
        counters.ipc(),
        100.0 * counters.dcache_misses as f64
            / (counters.dcache_reads + counters.dcache_writes) as f64
    );

    // 3. Golden power for the custom workload vs. the stock spmv workload.
    let netlist = synthesize(&config, &library);
    let custom_activity = derive_activity(&counters, &config);
    let custom_power = evaluate(&netlist, &custom_activity, Workload::Spmv, &library);

    let stock = autopower_perfsim::simulate(
        &config,
        Workload::Spmv,
        &autopower_perfsim::SimConfig::paper(),
    );
    let stock_power = evaluate(&netlist, &stock.activity, Workload::Spmv, &library);
    println!(
        "golden power: custom kernel {:.2} mW vs stock spmv {:.2} mW (stock profile: {} instructions)",
        custom_power.total_mw(),
        stock_power.total_mw(),
        profile(Workload::Spmv).nominal_instructions,
    );
    println!(
        "  DCache data array: custom {:.2} mW vs stock {:.2} mW",
        custom_power.component(Component::DCacheDataArray).total(),
        stock_power.component(Component::DCacheDataArray).total()
    );

    // 4. What-if on the VLSI flow: how does the macro mapping of the data-cache data
    //    array block change if the memory compiler only offered narrow macros?
    let block = &netlist.component(Component::DCacheDataArray).sram_blocks[0];
    let default_mapping = library.sram().map_block(block.width, block.depth);
    println!(
        "\nDCache data block {}x{} maps to {} macro(s) of {} by default",
        block.width,
        block.depth,
        default_mapping.macro_count(),
        default_mapping.macro_spec
    );

    let narrow_only: Vec<_> = library
        .sram()
        .supported_macros()
        .iter()
        .copied()
        .filter(|m| m.width <= 32)
        .collect();
    let narrow_compiler = autopower_techlib::SramCompiler::from_macros(narrow_only);
    let narrow_mapping = narrow_compiler.map_block(block.width, block.depth);
    println!(
        "with a narrow-macro-only compiler it needs {} macro(s) of {} ({}x the leakage)",
        narrow_mapping.macro_count(),
        narrow_mapping.macro_spec,
        (narrow_compiler.mapping_leakage_mw(&narrow_mapping)
            / library.sram().mapping_leakage_mw(&default_mapping))
        .round()
    );
}
