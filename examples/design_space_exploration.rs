//! Design-space exploration: the use case the paper's introduction motivates.
//!
//! An architect has golden data for only two known configurations and wants to
//! explore *candidate* configurations (never synthesized, never
//! power-simulated).  This example walks the full pipeline the `sweep --full
//! --stream` and `pareto` experiment verbs expose:
//!
//! 1. size the enumerable design space exactly with [`DesignSpace::total`],
//! 2. stream every valid configuration through the trained model with
//!    **bounded memory** ([`SweepEngine::stream`] + [`SweepAggregator`]):
//!    only the top-k table, the quantile sketches and the Pareto frontier are
//!    retained, never the full point set,
//! 3. read off the most energy-efficient designs and the
//!    power-vs-IPC-vs-area-proxy Pareto frontier.
//!
//! Run with `cargo run --release --example design_space_exploration`.

use autopower::{
    area_proxy, AutoPower, Corpus, CorpusSpec, PowerSeries, StreamSpec, SweepAggregator,
    SweepEngine, SweepSpec,
};
use autopower_config::{boom_configs, ConfigId, DesignSpace, HwParam, Workload};

fn main() {
    // Train from the two known configurations, exactly as in the quickstart.
    let known_configs = [boom_configs()[0], boom_configs()[14]];
    let workloads = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];
    let corpus = Corpus::generate(&known_configs, &workloads, &CorpusSpec::fast());
    let model = AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)])
        .expect("training succeeds");

    // The space the architect wants to explore.  The default BOOM space has
    // tens of thousands of valid points; this example folds a few axes so it
    // finishes in seconds — drop the `with_axis` calls to walk all of it.
    let space = DesignSpace::boom()
        .with_axis(HwParam::RobEntry, vec![32, 64, 96, 128])
        .with_axis(HwParam::DtlbEntry, vec![8, 16])
        .with_axis(HwParam::BranchCount, vec![8, 16])
        .with_axis(HwParam::MshrEntry, vec![4]);
    let total = space.total();
    println!(
        "design space: {total} valid configurations (of {} raw grid points)\n",
        space.raw_size()
    );

    // Stream the WHOLE space with bounded memory: configurations arrive in
    // chunks, each chunk's points are folded into the aggregator and dropped.
    let engine = SweepEngine::new(
        &model,
        SweepSpec {
            chunk_configs: 64,
            ..SweepSpec::fast()
        },
    );
    let mut aggregator = SweepAggregator::new(workloads.len(), &StreamSpec::default());
    let progress = engine
        .stream(space.enumerate(), &workloads, &mut aggregator, |_, _| {
            Ok(true)
        })
        .expect("no checkpoint callback, no error");
    assert!(progress.complete);
    println!(
        "streamed {} configurations in {} chunks; peak {} points in memory \
         (materializing would have retained {})",
        progress.configs_streamed,
        progress.chunks,
        progress.peak_retained_points,
        total * workloads.len() as u64,
    );

    // The aggregate: power distribution, best designs, Pareto frontier.
    let totals = aggregator.series(PowerSeries::Total);
    println!(
        "\npredicted total power across the space: {:.1} .. {:.1} mW (median {:.1})",
        totals.min().expect("non-empty sweep"),
        totals.max().expect("non-empty sweep"),
        totals.quantile(0.5).expect("non-empty sweep"),
    );

    println!("\nmost energy-efficient designs (predicted pJ per instruction):");
    for summary in aggregator.top().iter().take(5) {
        println!(
            "  {:<5} decode={} rob={:>3} ways={}  IPC {:.2}  {:>6.2} mW  {:>6.2} pJ/instr",
            summary.config.id.to_string(),
            summary.config.value(HwParam::DecodeWidth),
            summary.config.value(HwParam::RobEntry),
            summary.config.value(HwParam::CacheWay),
            summary.mean_ipc,
            summary.mean_total,
            summary.energy_per_instruction,
        );
    }

    let frontier = aggregator.pareto();
    println!(
        "\nPareto frontier (min power, max IPC, min area proxy): {} designs",
        frontier.len()
    );
    for entry in frontier.sorted_by_power().iter().take(8) {
        let s = &entry.summary;
        println!(
            "  {:<5} {:>6.2} mW  IPC {:.2}  area {:>5.1} kFBE",
            s.config.id.to_string(),
            s.mean_total,
            s.mean_ipc,
            entry.area,
        );
    }
    // The frontier's area column is a frozen pure function of the parameters.
    let first = frontier.entries().first().expect("non-empty frontier");
    assert_eq!(first.area, area_proxy(&first.summary.config));
}
