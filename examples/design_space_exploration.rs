//! Design-space exploration: the use case the paper's introduction motivates.
//!
//! An architect has golden data for only two known configurations and wants to rank a
//! set of *candidate* configurations (never synthesized, never power-simulated) by
//! energy efficiency.  AutoPower predicts each candidate's power from its hardware
//! parameters and a fast performance simulation; together with the simulated IPC this
//! gives an early-stage performance/power Pareto view.
//!
//! Run with `cargo run --release --example design_space_exploration`.

use autopower::{AutoPower, Corpus, CorpusSpec};
use autopower_config::{boom_configs, ConfigId, CpuConfig, HardwareParams, HwParam, Workload};
use autopower_perfsim::{simulate, SimConfig};

/// Builds a candidate configuration around the mid-range C8 baseline.
fn candidate(id: u8, decode: u32, rob: u32, issue: u32, ways: u32) -> CpuConfig {
    let params = HardwareParams::from_pairs([
        (HwParam::FetchWidth, 8),
        (HwParam::DecodeWidth, decode),
        (HwParam::FetchBufferEntry, 8 * decode),
        (HwParam::RobEntry, rob),
        (HwParam::IntPhyRegister, rob),
        (HwParam::FpPhyRegister, rob),
        (HwParam::LdqStqEntry, rob / 4),
        (HwParam::BranchCount, 12 + 2 * decode),
        (HwParam::MemFpIssueWidth, issue.div_ceil(2)),
        (HwParam::IntIssueWidth, issue),
        (HwParam::CacheWay, ways),
        (HwParam::DtlbEntry, 16),
        (HwParam::MshrEntry, 4),
        (HwParam::ICacheFetchBytes, 4),
    ]);
    // Candidate identifiers reuse the C1..C15 numbering space for display purposes only.
    CpuConfig::new(ConfigId::new(id), params)
}

fn main() {
    // Train from the two known configurations, exactly as in the quickstart.
    let known_configs = [boom_configs()[0], boom_configs()[14]];
    let workloads = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];
    let corpus = Corpus::generate(&known_configs, &workloads, &CorpusSpec::paper());
    let model = AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)])
        .expect("training succeeds");

    // Candidate design points the architect wants to compare (never synthesized).
    let candidates = [
        ("narrow-deep", candidate(2, 2, 96, 2, 8)),
        ("balanced", candidate(3, 3, 96, 3, 8)),
        ("wide-shallow", candidate(4, 4, 64, 4, 4)),
        ("wide-deep", candidate(5, 4, 128, 4, 8)),
        ("very-wide", candidate(6, 5, 140, 5, 8)),
    ];

    let workload = Workload::Qsort;
    println!("early design-space exploration on workload '{workload}'\n");
    println!("candidate      IPC    predicted power (mW)  energy per instr (pJ)");
    println!("----------------------------------------------------------------");
    let mut rows = Vec::new();
    for (name, cfg) in &candidates {
        let sim = simulate(cfg, workload, &SimConfig::paper());
        let power = model.predict(cfg, &sim.events, workload).total();
        let ipc = sim.ipc();
        // At 1 GHz: energy per instruction [pJ] = power [mW] / (IPC * 1 GHz) * 1e3.
        let epi = power / ipc.max(1e-9);
        rows.push((name, ipc, power, epi));
    }
    for (name, ipc, power, epi) in &rows {
        println!("{name:<13} {ipc:>5.2} {power:>21.2} {epi:>21.2}");
    }

    let best = rows
        .iter()
        .min_by(|a, b| a.3.partial_cmp(&b.3).expect("finite"))
        .expect("non-empty candidate list");
    println!(
        "\nmost energy-efficient candidate: {} ({:.2} pJ per instruction)",
        best.0, best.3
    );
}
