//! Quickstart: train AutoPower from two known configurations and predict the power of
//! every other configuration in the design space.
//!
//! Run with `cargo run --release --example quickstart`.

use autopower::{evaluate_totals, AutoPower, Corpus, CorpusSpec};
use autopower_config::{boom_configs, ConfigId, Workload};

fn main() {
    // 1. Build the data corpus: synthesize, simulate and power-evaluate every
    //    (configuration, workload) pair.  In the paper this is weeks of EDA runtime; here
    //    it is the synthetic substrate flow.
    let configs = boom_configs();
    let workloads = [
        Workload::Dhrystone,
        Workload::Qsort,
        Workload::Spmv,
        Workload::Vvadd,
    ];
    println!(
        "generating corpus: {} configurations x {} workloads ...",
        configs.len(),
        workloads.len()
    );
    let corpus = Corpus::generate(&configs, &workloads, &CorpusSpec::paper());

    // 2. Train AutoPower from only two *known* configurations (the few-shot setting).
    let known = [ConfigId::new(1), ConfigId::new(15)];
    let model = AutoPower::train(&corpus, &known).expect("training succeeds");
    println!("trained AutoPower on {known:?}");

    // 3. Predict the power of every unseen configuration and compare with golden power.
    let test_runs = corpus.test_runs(&known);
    let summary = evaluate_totals(&test_runs, |run| model.predict_total(run));
    println!(
        "\n{} unseen (configuration, workload) points: MAPE {:.2}%  R^2 {:.3}\n",
        summary.pairs.len(),
        summary.mape_percent(),
        summary.r_squared
    );

    println!("config  workload   golden (mW)  predicted (mW)");
    println!("------------------------------------------------");
    for pair in summary.pairs.iter().take(12) {
        println!(
            "{:<7} {:<10} {:>11.2} {:>15.2}",
            pair.config.to_string(),
            pair.workload.to_string(),
            pair.truth,
            pair.prediction
        );
    }
    println!("... ({} more rows)", summary.pairs.len().saturating_sub(12));
}
