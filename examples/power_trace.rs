//! Time-based power-trace prediction (the Table IV use case).
//!
//! Trains AutoPower on two known configurations using only average-power data, then
//! predicts the 50-cycle power trace of the GEMM kernel on an unseen configuration and
//! compares it with the golden trace.
//!
//! Run with `cargo run --release --example power_trace`.

use autopower::{trace_errors, AutoPower, Corpus, CorpusSpec, PowerTracePredictor};
use autopower_config::{boom_configs, ConfigId, Workload};
use autopower_perfsim::SimConfig;

fn main() {
    let configs = boom_configs();

    // Average-power corpus for training (riscv-tests workloads, two known configs).
    let train_corpus = Corpus::generate(
        &[configs[0], configs[14]],
        &Workload::RISCV_TESTS,
        &CorpusSpec::paper(),
    );
    let model = AutoPower::train(&train_corpus, &[ConfigId::new(1), ConfigId::new(15)])
        .expect("training succeeds");

    // Trace corpus: the large GEMM workload on the unseen C2 configuration.
    let trace_spec = CorpusSpec {
        sim: SimConfig {
            max_instructions: 200_000,
            ..SimConfig::paper()
        },
        ..CorpusSpec::paper()
    };
    let trace_corpus = Corpus::generate(&[configs[1]], &[Workload::Gemm], &trace_spec);
    let run = trace_corpus
        .run(ConfigId::new(2), Workload::Gemm)
        .expect("the run exists");

    let golden = trace_corpus.golden_trace(run);
    let predicted = PowerTracePredictor::new(&model).predict_trace(run);
    let errors = trace_errors(&golden, &predicted);

    println!(
        "GEMM on C2: {} intervals of {} cycles",
        golden.len(),
        golden.interval_cycles
    );
    println!(
        "max-power error {:.2}%, min-power error {:.2}%, average error {:.2}%\n",
        errors.max_power_error_percent(),
        errors.min_power_error_percent(),
        errors.average_error_percent()
    );

    println!("first intervals (golden vs predicted, mW):");
    println!("cycle      golden  predicted");
    println!("-----------------------------");
    for (g, p) in golden.samples.iter().zip(&predicted.samples).take(15) {
        println!(
            "{:<9} {:>7.2} {:>10.2}",
            g.start_cycle,
            g.power.total(),
            p.power.total()
        );
    }

    // A tiny ASCII sparkline of the golden trace, to make the phase structure visible.
    let totals = golden.totals();
    let (lo, hi) = totals
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let glyphs: &[char] = &['_', '.', '-', '=', '+', '*', '#'];
    let line: String = totals
        .iter()
        .step_by((totals.len() / 100).max(1))
        .map(|&v| {
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
            glyphs[((t * (glyphs.len() - 1) as f64).round()) as usize]
        })
        .collect();
    println!("\ngolden trace shape ({lo:.1} .. {hi:.1} mW):\n{line}");
}
