//! Workspace umbrella crate: convenient re-exports for the examples and the
//! workspace-level integration tests.
//!
//! Library users should depend on the individual crates (most importantly
//! [`autopower`]); this crate only exists so that the runnable examples and the
//! integration tests under `tests/` can refer to every layer of the stack through a
//! single dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use autopower_config as config;
pub use autopower_experiments as experiments;
pub use autopower_ml as ml;
pub use autopower_netlist as netlist;
pub use autopower_perfsim as perfsim;
pub use autopower_powersim as powersim;
pub use autopower_techlib as techlib;
pub use autopower_workloads as workloads;

pub use autopower as model;
