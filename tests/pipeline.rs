//! Regression tests for the parallel substrate pipeline: a corpus generated on a
//! worker pool must be bit-identical to the serial one, at every layer of the run
//! data, and downstream training must not observe any difference.

use autopower::{AutoPower, Corpus, CorpusSpec};
use autopower_config::{boom_configs, ConfigId, Workload};
use autopower_perfsim::SimConfig;

fn spec(threads: usize) -> CorpusSpec {
    CorpusSpec {
        sim: SimConfig {
            max_instructions: 5_000,
            ..SimConfig::fast()
        },
        ..CorpusSpec::fast()
    }
    .threads(threads)
}

fn paper_shaped_inputs() -> (Vec<autopower_config::CpuConfig>, Vec<Workload>) {
    let all = boom_configs();
    let configs = vec![all[0], all[3], all[7], all[11], all[14]];
    let workloads = vec![Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];
    (configs, workloads)
}

#[test]
fn parallel_corpus_is_bit_identical_to_serial() {
    let (configs, workloads) = paper_shaped_inputs();
    let serial = Corpus::generate(&configs, &workloads, &spec(1));
    let parallel = Corpus::generate(&configs, &workloads, &spec(8));

    assert_eq!(serial.runs().len(), parallel.runs().len());
    for (s, p) in serial.runs().iter().zip(parallel.runs()) {
        // Run identity and order.
        assert_eq!(s.config.id, p.config.id);
        assert_eq!(s.workload, p.workload);
        // Synthesized netlists (full structural equality).
        assert_eq!(s.netlist, p.netlist);
        // Performance simulation: counters, event parameters and intervals.
        assert_eq!(s.sim.counters, p.sim.counters);
        assert_eq!(s.sim.intervals.len(), p.sim.intervals.len());
        // Golden power, bit for bit.
        assert_eq!(s.golden.total_mw(), p.golden.total_mw());
        assert_eq!(s.golden.total, p.golden.total);
    }
}

#[test]
fn auto_thread_default_matches_serial() {
    let all = boom_configs();
    let configs = [all[0], all[14]];
    let workloads = [Workload::Median];
    // threads = 0 resolves to the available parallelism; the corpus must still
    // be identical to the serial one.
    let auto = Corpus::generate(&configs, &workloads, &spec(0));
    let serial = Corpus::generate(&configs, &workloads, &spec(1));
    for (a, s) in auto.runs().iter().zip(serial.runs()) {
        assert_eq!(a.netlist, s.netlist);
        assert_eq!(a.sim.counters, s.sim.counters);
        assert_eq!(a.golden.total_mw(), s.golden.total_mw());
    }
}

#[test]
fn models_trained_on_serial_and_parallel_corpora_agree() {
    let (configs, workloads) = paper_shaped_inputs();
    let serial = Corpus::generate(&configs, &workloads, &spec(1));
    let parallel = Corpus::generate(&configs, &workloads, &spec(8));
    let train = [ConfigId::new(1), ConfigId::new(15)];
    let model_s = AutoPower::train(&serial, &train).expect("training succeeds");
    let model_p = AutoPower::train(&parallel, &train).expect("training succeeds");
    for (rs, rp) in serial.runs().iter().zip(parallel.runs()) {
        assert_eq!(model_s.predict_run(rs), model_p.predict_run(rp));
    }
}

#[test]
fn oversubscribed_pool_is_still_deterministic() {
    // More workers than runs: the pool must neither deadlock nor reorder.
    let all = boom_configs();
    let configs = [all[2]];
    let workloads = [Workload::Towers];
    let wide = Corpus::generate(&configs, &workloads, &spec(32));
    let narrow = Corpus::generate(&configs, &workloads, &spec(1));
    assert_eq!(wide.runs().len(), 1);
    assert_eq!(
        wide.runs()[0].golden.total_mw(),
        narrow.runs()[0].golden.total_mw()
    );
}
