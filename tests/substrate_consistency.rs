//! Cross-crate consistency checks of the substrates: the synthetic flow must satisfy the
//! structural properties the AutoPower method relies on, across the whole design space.

use autopower_config::{boom_configs, sram_positions, Component, HwParam, Workload};
use autopower_netlist::synthesize;
use autopower_perfsim::{simulate, SimConfig};
use autopower_powersim::{evaluate_run, evaluate_trace};
use autopower_techlib::TechLibrary;

fn fast_sim() -> SimConfig {
    SimConfig {
        max_instructions: 4_000,
        ..SimConfig::fast()
    }
}

#[test]
fn every_configuration_synthesizes_with_all_positions_present() {
    let lib = TechLibrary::tsmc40_like();
    for cfg in boom_configs() {
        let netlist = synthesize(&cfg, &lib);
        assert_eq!(netlist.components.len(), Component::ALL.len());
        let block_count: usize = netlist.components.iter().map(|c| c.sram_blocks.len()).sum();
        assert_eq!(block_count, sram_positions().len(), "{}", cfg.id);
        for c in &netlist.components {
            assert!(c.registers > 0);
            assert!(c.comb_gates > 0.0);
            assert!(c.gated_registers <= c.registers);
        }
    }
}

#[test]
fn golden_power_is_monotone_in_design_scale_for_a_fixed_workload() {
    // Total golden power should broadly increase along the C1..C15 scaling of Table II
    // (the configurations are ordered from small to large).
    let lib = TechLibrary::tsmc40_like();
    let mut totals = Vec::new();
    for cfg in boom_configs() {
        let netlist = synthesize(&cfg, &lib);
        let sim = simulate(&cfg, Workload::Dhrystone, &fast_sim());
        totals.push(evaluate_run(&netlist, &sim, &lib).total_mw());
    }
    assert!(
        totals[14] > totals[0] * 2.0,
        "C15 {} vs C1 {}",
        totals[14],
        totals[0]
    );
    // Allow local non-monotonicity but require a clearly increasing overall trend:
    // every configuration at least as large as five positions earlier must burn more.
    for i in 5..totals.len() {
        assert!(
            totals[i] > totals[i - 5],
            "power trend violated between C{} and C{}",
            i - 4,
            i + 1
        );
    }
}

#[test]
fn event_parameters_react_to_hardware_parameters() {
    // Cache associativity must influence the miss-related event parameters: C1 has a
    // 2-way data cache, C3 an 8-way one, with everything else close.
    let cfgs = boom_configs();
    let small = simulate(&cfgs[0], Workload::Qsort, &fast_sim());
    let large = simulate(&cfgs[2], Workload::Qsort, &fast_sim());
    let small_missrate = small.counters.dcache_misses as f64
        / (small.counters.dcache_reads + small.counters.dcache_writes) as f64;
    let large_missrate = large.counters.dcache_misses as f64
        / (large.counters.dcache_reads + large.counters.dcache_writes) as f64;
    assert!(
        small_missrate > large_missrate,
        "2-way miss rate {small_missrate} should exceed 8-way miss rate {large_missrate}"
    );
}

#[test]
fn power_traces_and_average_power_are_consistent_for_every_workload() {
    let lib = TechLibrary::tsmc40_like();
    let cfg = boom_configs()[7];
    let netlist = synthesize(&cfg, &lib);
    for workload in Workload::ALL {
        let sim = simulate(&cfg, workload, &fast_sim());
        let report = evaluate_run(&netlist, &sim, &lib);
        let trace = evaluate_trace(&netlist, &sim, &lib);
        assert!(report.total_mw() > 0.0);
        assert!(!trace.is_empty());
        let rel = (trace.average_power() - report.total_mw()).abs() / report.total_mw();
        assert!(rel < 0.2, "{workload}: trace average deviates by {rel}");
        assert!(trace.max_power() + 1e-9 >= trace.average_power());
        assert!(trace.min_power() <= trace.average_power() + 1e-9);
    }
}

#[test]
fn table_iii_sensitivity_holds_in_the_netlist() {
    // Doubling a parameter changes only the components that list it in Table III (plus
    // OtherLogic, which depends on everything).
    let lib = TechLibrary::tsmc40_like();
    let base = boom_configs()[7];
    let mut scaled = base;
    scaled.params.set(
        HwParam::MshrEntry,
        base.params.value(HwParam::MshrEntry) * 2,
    );
    let n0 = synthesize(&base, &lib);
    let n1 = synthesize(&scaled, &lib);
    for c in Component::ALL {
        let before = n0.component(c).registers;
        let after = n1.component(c).registers;
        let depends = c.hw_params().contains(&HwParam::MshrEntry);
        if depends {
            assert!(after > before, "{c} should grow with MSHR entries");
        } else {
            assert_eq!(after, before, "{c} must not change");
        }
    }
}
