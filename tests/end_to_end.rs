//! Workspace-level integration test: the full flow from configurations to few-shot
//! power prediction, spanning every crate.

use autopower::baselines::McpatCalib;
use autopower::{evaluate_totals, AutoPower, Corpus, CorpusSpec};
use autopower_config::{boom_configs, ConfigId, Workload};
use autopower_perfsim::SimConfig;

fn small_spec() -> CorpusSpec {
    CorpusSpec {
        sim: SimConfig {
            max_instructions: 5_000,
            ..SimConfig::fast()
        },
        ..CorpusSpec::fast()
    }
}

#[test]
fn full_flow_end_to_end() {
    let all = boom_configs();
    let configs = [all[0], all[4], all[7], all[11], all[14]];
    let workloads = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];
    let corpus = Corpus::generate(&configs, &workloads, &small_spec());
    assert_eq!(corpus.runs().len(), configs.len() * workloads.len());

    let train = [ConfigId::new(1), ConfigId::new(15)];
    let model = AutoPower::train(&corpus, &train).expect("AutoPower trains from two configs");
    let baseline = McpatCalib::train(&corpus, &train).expect("baseline trains");

    let test_runs = corpus.test_runs(&train);
    let ours = evaluate_totals(&test_runs, |run| model.predict_total(run));
    let theirs = evaluate_totals(&test_runs, |run| baseline.predict_run(run));

    // Headline claim of the paper, reproduced in shape: the decoupled model is more
    // accurate than the monolithic ML baseline in the few-shot regime.
    assert!(
        ours.mape < theirs.mape,
        "AutoPower MAPE {} should beat McPAT-Calib MAPE {}",
        ours.mape,
        theirs.mape
    );
    assert!(ours.mape < 0.15, "AutoPower MAPE {}", ours.mape);
    assert!(ours.r_squared > 0.8, "AutoPower R^2 {}", ours.r_squared);
}

#[test]
fn corpus_generation_is_fully_deterministic() {
    let all = boom_configs();
    let configs = [all[0], all[14]];
    let workloads = [Workload::Median];
    let a = Corpus::generate(&configs, &workloads, &small_spec());
    let b = Corpus::generate(&configs, &workloads, &small_spec());
    for (ra, rb) in a.runs().iter().zip(b.runs()) {
        assert_eq!(ra.golden.total_mw(), rb.golden.total_mw());
        assert_eq!(ra.sim.counters, rb.sim.counters);
        assert_eq!(ra.netlist, rb.netlist);
    }
}

#[test]
fn trained_model_predictions_are_deterministic_and_physical() {
    let all = boom_configs();
    let configs = [all[0], all[7], all[14]];
    let workloads = [Workload::Dhrystone, Workload::Rsort];
    let corpus = Corpus::generate(&configs, &workloads, &small_spec());
    let train = [ConfigId::new(1), ConfigId::new(15)];
    let m1 = AutoPower::train(&corpus, &train).expect("training succeeds");
    let m2 = AutoPower::train(&corpus, &train).expect("training succeeds");
    for run in corpus.runs() {
        let p1 = m1.predict_run(run);
        let p2 = m2.predict_run(run);
        assert_eq!(p1, p2, "training and prediction must be deterministic");
        assert!(p1.is_physical());
        assert!(p1.total() > 0.0);
    }
}

#[test]
fn predictions_scale_with_configuration_size() {
    // A basic sanity property: the predicted power of the largest configuration exceeds
    // that of the smallest one for the same workload.
    let all = boom_configs();
    let configs = [all[0], all[4], all[9], all[14]];
    let workloads = [Workload::Dhrystone, Workload::Vvadd];
    let corpus = Corpus::generate(&configs, &workloads, &small_spec());
    let model = AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)])
        .expect("training succeeds");
    let small = corpus.run(ConfigId::new(5), Workload::Dhrystone).unwrap();
    let large = corpus.run(ConfigId::new(10), Workload::Dhrystone).unwrap();
    assert!(model.predict_total(large) > model.predict_total(small));
}
