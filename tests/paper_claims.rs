//! Integration tests that pin the qualitative claims of the paper (the "shape" of every
//! experiment) on the reduced experiment settings.

use autopower_experiments::Experiments;

#[test]
fn observation_1_clock_and_sram_dominate() {
    let exp = Experiments::fast();
    let breakdown = exp.obs1_breakdown();
    assert!(
        breakdown.clock_plus_sram() > 0.5,
        "clock + SRAM should dominate, got {}",
        breakdown.clock_plus_sram()
    );
    // Each of the two dominant groups individually outweighs the register group.
    assert!(breakdown.clock_fraction > breakdown.register_fraction);
    assert!(breakdown.sram_fraction > breakdown.register_fraction);
}

#[test]
fn table_1_scaling_rule_is_recovered() {
    let exp = Experiments::fast();
    let t1 = exp.table1_hardware_model();
    assert!(t1.model.capacity.relative_error < 1e-6);
    for (_, predicted, truth) in &t1.predictions {
        assert_eq!(predicted, truth);
    }
}

#[test]
fn figure_4_and_5_autopower_beats_the_baselines() {
    let exp = Experiments::fast();
    for cmp in [
        exp.fig4_accuracy_two_configs().unwrap(),
        exp.fig5_accuracy_three_configs().unwrap(),
    ] {
        let ours = cmp.autopower().summary.clone();
        let mcpat = cmp.mcpat_calib().summary.clone();
        assert!(
            ours.mape < mcpat.mape,
            "MAPE {} vs {}",
            ours.mape,
            mcpat.mape
        );
        assert!(ours.r_squared > mcpat.r_squared);
        // AutoPower stays in the paper's accuracy regime even on the reduced corpus.
        assert!(ours.mape < 0.12, "AutoPower MAPE {}", ours.mape);
        assert!(ours.r_squared > 0.85, "AutoPower R^2 {}", ours.r_squared);
    }
}

#[test]
fn figure_6_gap_narrows_with_more_training_configurations() {
    let exp = Experiments::fast();
    let sweep = exp.fig6_training_sweep().unwrap();
    let ours = sweep.mape_series("AutoPower");
    let mcpat = sweep.mape_series("McPAT-Calib");
    // AutoPower wins everywhere...
    for (a, b) in ours.iter().zip(&mcpat) {
        assert!(a < b);
    }
    // ... and AutoPower improves (or at least does not get worse) as the number of known
    // configurations grows; the baseline is allowed to fluctuate on the reduced corpus.
    assert!(ours.last().unwrap() <= &(ours[0] + 0.02));
    assert!(mcpat.last().unwrap() <= &(mcpat[0] + 0.10));
}

#[test]
fn figures_7_and_8_decoupling_beats_direct_ml_at_the_core_level() {
    use autopower_experiments::Experiments;
    use autopower_repro::model::ModelKind;

    let exp = Experiments::fast();
    let clock = exp.fig7_clock_detail();
    let (ours, _) = clock.core_level_of(ModelKind::AutoPower).unwrap();
    let (minus, _) = clock.core_level_of(ModelKind::AutoPowerMinus).unwrap();
    assert!(ours < minus + 0.02);
    assert!(clock.sub_models.unwrap().register_count_mape < 0.2);
    let sram = exp.fig8_sram_detail();
    let (ours, _) = sram.core_level_of(ModelKind::AutoPower).unwrap();
    let (minus, _) = sram.core_level_of(ModelKind::AutoPowerMinus).unwrap();
    assert!(ours < minus);
}

#[test]
fn table_4_trace_errors_stay_in_the_paper_band() {
    let exp = Experiments::fast();
    let t4 = exp.table4_power_trace();
    assert!(!t4.cases.is_empty());
    assert!(
        t4.mean_average_error() < 0.25,
        "mean average error {}",
        t4.mean_average_error()
    );
}
