//! Training parity: the pre-sorted tree trainer and flat-forest inference of
//! PR 5 must reproduce the PR 4 predictions **bit for bit**.
//!
//! The golden bit patterns below were captured from the PR 4 trainer (per-node
//! row sorts, boxed-tree inference) on the standard fast corpus before the
//! refactor landed.  Any change to split selection, accumulation order, tie
//! breaking or traversal shows up here as a hard failure — this is the
//! regression fence around the repo's standing "predictions never move"
//! invariant.

use autopower_repro::config::{boom_configs, ConfigId, Workload};
use autopower_repro::ml::{GbdtParams, GradientBoosting, Matrix, Regressor};
use autopower_repro::model::{Corpus, CorpusSpec, ModelKind};

/// `predict_total` bits of every registry model over every run of the
/// standard fast corpus (3 configs × 3 workloads, trained on C1+C15),
/// captured from the PR 4 trainer.
const GOLDEN_TOTAL_BITS: [(ModelKind, [u64; 9]); 4] = [
    (
        ModelKind::AutoPower,
        [
            0x404360abe9981dfb,
            0x403fccd5268637ae,
            0x40420fd048b3a6eb,
            0x4052f8b2ca53d454,
            0x405144314d5aa935,
            0x40535537c80d15cd,
            0x40596cebe947913f,
            0x4056422084b04710,
            0x40654a1142f30757,
        ],
    ),
    (
        ModelKind::McpatCalib,
        [
            0x404362ccb6fbb176,
            0x403ff3ee5200c984,
            0x40421189c58b7cbb,
            0x405964b0bb9bf5cb,
            0x405637bc81b354f7,
            0x405964b0bb9bf5cb,
            0x405964b0bb9bf5cb,
            0x405637bc81b354f7,
            0x406545b66aaf3885,
        ],
    ),
    (
        ModelKind::McpatCalibComponent,
        [
            0x404364b298635357,
            0x403fec61eabdc377,
            0x404211d76178fa04,
            0x4055d61375305a77,
            0x40500961c3b82844,
            0x40559c1eaf23083d,
            0x4059676b58ee06ef,
            0x4056389d7ec64707,
            0x406545b8a7cdd1a4,
        ],
    ),
    (
        ModelKind::AutoPowerMinus,
        [
            0x4043655624c61f27,
            0x403febc423745cd2,
            0x404211b5e738fb29,
            0x40550d241ec4a547,
            0x404f0646786689cd,
            0x4054b62882157768,
            0x405967a57fe46c10,
            0x405638a6d5c6b01a,
            0x4065460410008d5e,
        ],
    ),
];

fn corpus() -> Corpus {
    let cfgs = boom_configs();
    Corpus::generate(
        &[cfgs[0], cfgs[7], cfgs[14]],
        &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
        &CorpusSpec::fast(),
    )
}

#[test]
fn presorted_training_reproduces_the_pr4_goldens_for_every_registry_model() {
    let c = corpus();
    let train = [ConfigId::new(1), ConfigId::new(15)];
    for (kind, golden) in GOLDEN_TOTAL_BITS {
        let model = kind.train(&c, &train).unwrap();
        for (run, &want) in c.runs().iter().zip(golden.iter()) {
            let got = model.predict_total(run);
            assert_eq!(
                got.to_bits(),
                want,
                "{kind} drifted on {:?}/{:?}: predicted {got}, golden {}",
                run.config.id,
                run.workload,
                f64::from_bits(want)
            );
        }
    }
}

#[test]
fn flat_forest_serves_the_same_bits_as_the_recursive_reference() {
    // The same property the ml-crate proptests pin, exercised here on real
    // power-model feature distributions: a GBDT trained on corpus-shaped data
    // predicts identically through the flat and the recursive path.
    let c = corpus();
    let runs = c.runs();
    let rows: Vec<Vec<f64>> = runs
        .iter()
        .map(|r| autopower_repro::model::baselines::McpatCalib::features(&r.config, &r.sim.events))
        .collect();
    let targets: Vec<f64> = runs.iter().map(|r| r.golden.total_mw()).collect();
    let mut m = GradientBoosting::new(GbdtParams::default());
    m.fit(&rows, &targets).unwrap();
    let matrix = Matrix::from_rows(&rows);
    let mut batched = Vec::new();
    m.forest().predict_into(&matrix, &mut batched);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(m.predict(row).to_bits(), m.predict_recursive(row).to_bits());
        assert_eq!(batched[i].to_bits(), m.predict_recursive(row).to_bits());
    }
}

#[test]
fn scratch_threaded_predictions_match_the_scratch_free_path() {
    use autopower_repro::model::FeatureScratch;
    let c = corpus();
    let train = [ConfigId::new(1), ConfigId::new(15)];
    let mut scratch = FeatureScratch::new();
    for kind in ModelKind::ALL {
        let model = kind.train(&c, &train).unwrap();
        for run in c.runs() {
            // One shared scratch across every run and model: reuse never
            // changes a prediction.
            let with = model.predict_with(&run.config, &run.sim.events, run.workload, &mut scratch);
            let without = model.predict(&run.config, &run.sim.events, run.workload);
            assert_eq!(with, without, "{kind} scratch reuse changed a prediction");
        }
    }
}
