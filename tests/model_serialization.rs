//! Save/load acceptance: every registry model round-trips through the
//! registry-tagged text format with **bit-identical** predictions, the
//! encoded text itself is a stable golden form (re-encoding a loaded model
//! reproduces it byte for byte), and a loaded model's sweep output equals the
//! freshly-trained model's — so a sweep service can skip retraining entirely.

use autopower_repro::config::{boom_configs, ConfigId, DesignSpace, Workload};
use autopower_repro::model::{
    decode_model, encode_model, Corpus, CorpusSpec, ModelKind, SweepEngine, SweepSpec,
    MODEL_FORMAT_VERSION,
};
use std::sync::OnceLock;

fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    })
}

fn train_ids() -> [ConfigId; 2] {
    [ConfigId::new(1), ConfigId::new(15)]
}

#[test]
fn every_registry_model_round_trips_with_bit_identical_predictions() {
    let c = corpus();
    for kind in ModelKind::ALL {
        let trained = kind.train(c, &train_ids()).unwrap();
        let text = encode_model(trained.as_ref());
        let loaded = decode_model(&text).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(loaded.kind(), kind);
        for run in c.runs() {
            // The full typed prediction — total AND resolved structure — is
            // equal, not just close.
            assert_eq!(
                loaded.predict_run(run),
                trained.predict_run(run),
                "{kind} prediction drifted through serialization"
            );
            assert_eq!(
                loaded.predict_total(run).to_bits(),
                trained.predict_total(run).to_bits(),
                "{kind} total drifted through serialization"
            );
            assert_eq!(
                loaded.predict_run_components(run),
                trained.predict_run_components(run),
                "{kind} component view drifted through serialization"
            );
        }
    }
}

#[test]
fn encoded_form_is_a_stable_golden_format() {
    // decode(encode(m)) re-encodes to the *same bytes*: the format is
    // canonical, so golden files and drift detection are byte comparisons.
    let c = corpus();
    for kind in ModelKind::ALL {
        let trained = kind.train(c, &train_ids()).unwrap();
        let text = encode_model(trained.as_ref());
        let loaded = decode_model(&text).unwrap();
        assert_eq!(
            encode_model(loaded.as_ref()),
            text,
            "{kind} re-encoding is not canonical"
        );
        // Header golden: first lines carry the version and the registry tag.
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("autopower-model {"));
        assert_eq!(
            lines.next().map(str::trim),
            Some(format!("version {MODEL_FORMAT_VERSION}").as_str())
        );
        assert_eq!(
            lines.next().map(str::trim),
            Some(format!("kind {}", kind.registry_name()).as_str())
        );
        assert_eq!(text.lines().last(), Some("}"));
    }
}

#[test]
fn loaded_model_sweeps_bit_identically_to_the_trained_model() {
    let c = corpus();
    let configs = DesignSpace::boom().sample(5, 17);
    let workloads = [Workload::Dhrystone, Workload::Vvadd];
    let spec = SweepSpec::fast().threads(2);
    for kind in [ModelKind::AutoPower, ModelKind::McpatCalib] {
        let trained = kind.train(c, &train_ids()).unwrap();
        let loaded = decode_model(&encode_model(trained.as_ref())).unwrap();
        let fresh = SweepEngine::new(trained.as_ref(), spec).run(&configs, &workloads);
        let restored = SweepEngine::new(loaded.as_ref(), spec).run(&configs, &workloads);
        assert_eq!(
            fresh, restored,
            "{kind} sweep drifted through serialization"
        );
    }
}

#[test]
fn tampered_files_fail_loudly() {
    let c = corpus();
    let trained = ModelKind::McpatCalib.train(c, &train_ids()).unwrap();
    let text = encode_model(trained.as_ref());

    // Wrong registry tag.
    let wrong_kind = text.replacen("kind mcpat-calib", "kind autopower", 1);
    assert!(
        decode_model(&wrong_kind).is_err(),
        "kind/body mismatch must fail"
    );

    // Wrong version.
    let wrong_version = text.replacen(
        &format!("version {MODEL_FORMAT_VERSION}"),
        "version 9999",
        1,
    );
    let err = decode_model(&wrong_version).unwrap_err();
    assert!(err.to_string().contains("9999"));

    // Truncation.
    let truncated = &text[..text.len() / 2];
    assert!(decode_model(truncated).is_err());

    // Trailing garbage after the closing brace.
    let trailing = format!("{text}\nextra 1\n");
    assert!(decode_model(&trailing).is_err());
}

#[test]
fn serialization_also_pins_the_trained_model_against_behavioural_drift() {
    // A PowerModel is deterministic: training twice and loading a saved copy
    // all agree.  This is the property that lets CI gate the format — any
    // change to training or to the codec shows up as a diff here.
    let c = corpus();
    let a = ModelKind::AutoPowerMinus.train(c, &train_ids()).unwrap();
    let b = ModelKind::AutoPowerMinus.train(c, &train_ids()).unwrap();
    assert_eq!(encode_model(a.as_ref()), encode_model(b.as_ref()));
}
