//! Trait-path parity: for every registry model, typed predictions made through
//! `Box<dyn PowerModel>` are bit-identical to the inherent-method predictions
//! (totals AND resolved structure), and the model-agnostic engines (sweep,
//! trace, xval) accept baselines.  These tests pin the acceptance criterion of
//! the typed-`Prediction` redesign: totals never moved, and no consumer reads
//! a parked group slot from a total-only model.

use autopower_repro::config::{boom_configs, Component, ConfigId, DesignSpace, Workload};
use autopower_repro::model::baselines::{AutoPowerMinus, McpatCalib, McpatCalibComponent};
use autopower_repro::model::{
    cross_validate_model, AutoPower, Corpus, CorpusSpec, ModelKind, PowerModel,
    PowerTracePredictor, Resolution, SweepEngine, SweepSpec,
};
use autopower_repro::powersim::PowerGroups;

fn corpus() -> Corpus {
    let cfgs = boom_configs();
    Corpus::generate(
        &[cfgs[0], cfgs[7], cfgs[14]],
        &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
        &CorpusSpec::fast(),
    )
}

fn train_ids() -> [ConfigId; 2] {
    [ConfigId::new(1), ConfigId::new(15)]
}

fn bits(groups: PowerGroups) -> [u64; 4] {
    [
        groups.clock.to_bits(),
        groups.sram.to_bits(),
        groups.register.to_bits(),
        groups.combinational.to_bits(),
    ]
}

#[test]
fn autopower_trait_predictions_are_bit_identical_to_inherent() {
    let c = corpus();
    let inherent = AutoPower::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::AutoPower.train(&c, &train_ids()).unwrap();
    for run in c.runs() {
        let typed = boxed.predict_run(run);
        let legacy = inherent.predict_run(run);
        assert!(matches!(typed.resolution(), Resolution::Grouped(_)));
        assert_eq!(bits(typed.groups().unwrap()), bits(legacy));
        assert_eq!(typed.total().to_bits(), legacy.total().to_bits());
        assert_eq!(
            boxed.predict_total(run).to_bits(),
            inherent.predict_total(run).to_bits()
        );
    }
}

#[test]
fn autopower_component_view_matches_inherent_predict_component() {
    let c = corpus();
    let inherent = AutoPower::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::AutoPower.train(&c, &train_ids()).unwrap();
    for run in c.runs() {
        let breakdown = boxed.predict_run_components(run).unwrap();
        for component in Component::ALL {
            let legacy =
                inherent.predict_component(component, &run.config, &run.sim.events, run.workload);
            let entry = breakdown.component(component);
            assert_eq!(bits(entry.groups.unwrap()), bits(legacy));
            assert_eq!(entry.total.to_bits(), legacy.total().to_bits());
        }
    }
}

#[test]
fn autopower_minus_trait_predictions_are_bit_identical_to_inherent() {
    let c = corpus();
    let inherent = AutoPowerMinus::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::AutoPowerMinus.train(&c, &train_ids()).unwrap();
    for run in c.runs() {
        let typed = boxed.predict_run(run);
        let legacy = inherent.predict_run(run);
        // AutoPower− is fully component-resolved; its core-level groups are
        // the Component::ALL-ordered sum — bit-identical to the inherent
        // accumulation loop.
        assert!(matches!(typed.resolution(), Resolution::PerComponent(_)));
        assert_eq!(bits(typed.groups().unwrap()), bits(legacy));
        assert_eq!(typed.total().to_bits(), legacy.total().to_bits());
        let breakdown = typed.components().unwrap();
        for component in Component::ALL {
            let legacy_component =
                inherent.predict_component(component, &run.config, &run.sim.events, run.workload);
            assert_eq!(
                bits(breakdown.component(component).groups.unwrap()),
                bits(legacy_component)
            );
        }
    }
}

#[test]
fn mcpat_calib_trait_totals_are_bit_identical_to_inherent() {
    let c = corpus();
    let inherent = McpatCalib::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::McpatCalib.train(&c, &train_ids()).unwrap();
    for run in c.runs() {
        let typed = boxed.predict_run(run);
        // The inherent API predicts a scalar; the typed prediction carries it
        // as TotalOnly — same bits, and no group structure to misread.
        assert_eq!(typed.total().to_bits(), inherent.predict_run(run).to_bits());
        assert!(matches!(typed.resolution(), Resolution::TotalOnly));
        assert!(typed.groups().is_none());
        assert!(typed.components().is_none());
        assert!(boxed.predict_run_components(run).is_none());
    }
}

#[test]
fn mcpat_calib_component_trait_totals_are_bit_identical_to_inherent() {
    let c = corpus();
    let inherent = McpatCalibComponent::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::McpatCalibComponent
        .train(&c, &train_ids())
        .unwrap();
    for run in c.runs() {
        let typed = boxed.predict_run(run);
        assert_eq!(typed.total().to_bits(), inherent.predict_run(run).to_bits());
        // Component-resolved but without per-component groups: each entry
        // carries the inherent per-component scalar, no group split.
        assert!(typed.groups().is_none());
        let breakdown = typed.components().unwrap();
        assert!(!breakdown.resolves_groups());
        for component in Component::ALL {
            let entry = breakdown.component(component);
            assert!(entry.groups.is_none());
            assert_eq!(
                entry.total.to_bits(),
                inherent
                    .predict_component(component, &run.config, &run.sim.events, run.workload)
                    .to_bits()
            );
        }
    }
}

#[test]
fn sweep_engine_under_dyn_autopower_matches_predict_batch() {
    let c = corpus();
    let inherent = AutoPower::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::AutoPower.train(&c, &train_ids()).unwrap();
    let configs = DesignSpace::boom().sample(6, 7);
    let workloads = [Workload::Dhrystone, Workload::Vvadd];
    let spec = SweepSpec::fast().threads(1);
    // The default AutoPower sweep path is bit-identical before and after the
    // trait refactor: `predict_batch` (inherent convenience) and a
    // `SweepEngine` over the boxed trait object score the same points.
    let via_inherent = inherent.predict_batch(&configs, &workloads, &spec);
    let via_trait = SweepEngine::new(boxed.as_ref(), spec).run(&configs, &workloads);
    assert_eq!(via_inherent, via_trait);
}

#[test]
fn trace_predictor_under_dyn_model_matches_inherent_predictions() {
    let c = corpus();
    let inherent = AutoPower::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::AutoPower.train(&c, &train_ids()).unwrap();
    let run = c.run(ConfigId::new(8), Workload::Qsort).unwrap();
    let via_inherent = PowerTracePredictor::new(&inherent).predict_trace(run);
    let via_trait = PowerTracePredictor::new(boxed.as_ref()).predict_trace(run);
    assert_eq!(via_inherent, via_trait);
}

#[test]
fn cross_validation_runs_under_a_baseline_model() {
    let c = corpus();
    let ids = c.config_ids();
    let xv = cross_validate_model(&c, &ids, ModelKind::McpatCalib).unwrap();
    assert_eq!(xv.model, ModelKind::McpatCalib);
    assert_eq!(xv.folds.len(), ids.len());
    let pooled = xv.pooled();
    assert_eq!(pooled.pairs.len(), c.runs().len());
    assert!(pooled.mape.is_finite());
    assert!(xv.worst_fold_mape() >= pooled.mape - 1e-12);
}
