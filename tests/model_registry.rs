//! Trait-path parity: for every registry model, predictions made through
//! `Box<dyn PowerModel>` are bit-identical to the pre-refactor inherent-method
//! predictions, and the model-agnostic engines (sweep, trace, xval) accept
//! baselines.

use autopower_repro::config::{boom_configs, ConfigId, DesignSpace, Workload};
use autopower_repro::model::baselines::{AutoPowerMinus, McpatCalib, McpatCalibComponent};
use autopower_repro::model::{
    cross_validate_model, AutoPower, Corpus, CorpusSpec, ModelKind, PowerModel,
    PowerTracePredictor, SweepEngine, SweepSpec,
};

fn corpus() -> Corpus {
    let cfgs = boom_configs();
    Corpus::generate(
        &[cfgs[0], cfgs[7], cfgs[14]],
        &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
        &CorpusSpec::fast(),
    )
}

fn train_ids() -> [ConfigId; 2] {
    [ConfigId::new(1), ConfigId::new(15)]
}

#[test]
fn autopower_trait_predictions_are_bit_identical_to_inherent() {
    let c = corpus();
    let inherent = AutoPower::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::AutoPower.train(&c, &train_ids()).unwrap();
    for run in c.runs() {
        assert_eq!(boxed.predict_run(run), inherent.predict_run(run));
        assert_eq!(boxed.predict_total(run), inherent.predict_total(run));
    }
}

#[test]
fn autopower_minus_trait_predictions_are_bit_identical_to_inherent() {
    let c = corpus();
    let inherent = AutoPowerMinus::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::AutoPowerMinus.train(&c, &train_ids()).unwrap();
    for run in c.runs() {
        assert_eq!(boxed.predict_run(run), inherent.predict_run(run));
    }
}

#[test]
fn mcpat_calib_trait_totals_are_bit_identical_to_inherent() {
    let c = corpus();
    let inherent = McpatCalib::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::McpatCalib.train(&c, &train_ids()).unwrap();
    for run in c.runs() {
        // The inherent API predicts a scalar; the trait parks it in one group
        // slot, so the total must survive the round trip bit for bit.
        assert_eq!(boxed.predict_total(run), inherent.predict_run(run));
        assert_eq!(boxed.predict_run(run).total(), inherent.predict_run(run));
        assert!(!boxed.resolves_groups());
    }
}

#[test]
fn mcpat_calib_component_trait_totals_are_bit_identical_to_inherent() {
    let c = corpus();
    let inherent = McpatCalibComponent::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::McpatCalibComponent
        .train(&c, &train_ids())
        .unwrap();
    for run in c.runs() {
        assert_eq!(boxed.predict_total(run), inherent.predict_run(run));
        assert!(!boxed.resolves_groups());
    }
}

#[test]
fn sweep_engine_under_dyn_autopower_matches_predict_batch() {
    let c = corpus();
    let inherent = AutoPower::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::AutoPower.train(&c, &train_ids()).unwrap();
    let configs = DesignSpace::boom().sample(6, 7);
    let workloads = [Workload::Dhrystone, Workload::Vvadd];
    let spec = SweepSpec::fast().threads(1);
    // The default AutoPower sweep path is bit-identical before and after the
    // trait refactor: `predict_batch` (inherent convenience) and a
    // `SweepEngine` over the boxed trait object score the same points.
    let via_inherent = inherent.predict_batch(&configs, &workloads, &spec);
    let via_trait = SweepEngine::new(boxed.as_ref(), spec).run(&configs, &workloads);
    assert_eq!(via_inherent, via_trait);
}

#[test]
fn trace_predictor_under_dyn_model_matches_inherent_predictions() {
    let c = corpus();
    let inherent = AutoPower::train(&c, &train_ids()).unwrap();
    let boxed: Box<dyn PowerModel> = ModelKind::AutoPower.train(&c, &train_ids()).unwrap();
    let run = c.run(ConfigId::new(8), Workload::Qsort).unwrap();
    let via_inherent = PowerTracePredictor::new(&inherent).predict_trace(run);
    let via_trait = PowerTracePredictor::new(boxed.as_ref()).predict_trace(run);
    assert_eq!(via_inherent, via_trait);
}

#[test]
fn cross_validation_runs_under_a_baseline_model() {
    let c = corpus();
    let ids = c.config_ids();
    let xv = cross_validate_model(&c, &ids, ModelKind::McpatCalib).unwrap();
    assert_eq!(xv.model, ModelKind::McpatCalib);
    assert_eq!(xv.folds.len(), ids.len());
    let pooled = xv.pooled();
    assert_eq!(pooled.pairs.len(), c.runs().len());
    assert!(pooled.mape.is_finite());
    assert!(xv.worst_fold_mape() >= pooled.mape - 1e-12);
}
