//! Workspace-level acceptance tests of the design-space sweep subsystem:
//! generated (non-seed) configurations flow through batch inference with
//! bit-identical results for every worker-thread count.

use autopower_repro::config::{DesignSpace, Workload};
use autopower_repro::experiments::{ExperimentSettings, Experiments};
use autopower_repro::model::{AutoPower, Corpus, CorpusSpec, SweepEngine, SweepSpec};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One trained model shared by every property case (training is the expensive
/// part and is itself deterministic).
fn model() -> &'static AutoPower {
    static MODEL: OnceLock<AutoPower> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfgs = autopower_repro::config::boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let train = [
            autopower_repro::config::ConfigId::new(1),
            autopower_repro::config::ConfigId::new(15),
        ];
        AutoPower::train(&corpus, &train).expect("training succeeds")
    })
}

proptest! {
    /// `threads(1)` and `threads(8)` (and any chunking) score the same points
    /// bit for bit, whatever subset of the space is drawn.
    #[test]
    fn sweep_is_thread_count_invariant(
        count in 2usize..8,
        sample_seed in 0u64..10_000,
        chunk in 1usize..5,
    ) {
        let configs = DesignSpace::boom().sample(count, sample_seed);
        let workloads = [Workload::Dhrystone, Workload::Qsort];
        let serial = SweepEngine::new(
            model(),
            SweepSpec { chunk_configs: chunk, ..SweepSpec::fast().threads(1) },
        )
        .run(&configs, &workloads);
        let parallel = SweepEngine::new(model(), SweepSpec::fast().threads(8))
            .run(&configs, &workloads);
        prop_assert_eq!(serial, parallel);
    }
}

/// The ISSUE acceptance criterion: a fast sweep over 200 generated
/// configurations succeeds, touches no seed, and prints the same report for
/// any `--threads` value.
#[test]
fn fast_sweep_explores_200_generated_configs_identically_across_threads() {
    let run = |threads: usize| {
        Experiments::new(ExperimentSettings::fast().with_threads(threads)).design_space_sweep(200)
    };
    let serial = run(1);
    assert_eq!(serial.summaries.len(), 200);
    assert!(serial.summaries.iter().all(|s| !s.config.id.is_seed()));
    let parallel = run(8);
    assert_eq!(serial.summaries, parallel.summaries);
    assert_eq!(serial.to_string(), parallel.to_string());
}
